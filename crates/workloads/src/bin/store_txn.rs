//! Transactional-store scenario: throughput of the sharded store under a
//! mixed workload of **cross-shard transactions**, serializable snapshot
//! gets, and linearizable range queries, for every store backend.
//!
//! Each worker registers a `StoreHandle` session and draws from a
//! `T − G − RQ` mix (txn / snapshot-get / range-query percentages). In
//! the write-only mixes a txn stages `BATCH` keys spread uniformly over
//! the keyspace (so it almost always spans several shards), half puts and
//! half removes, and commits them under one timestamp through `WriteTxn`.
//! The **rw** mix replaces those with serializable read-modify-write
//! `ReadWriteTxn`s: read `BATCH / 2` keys at one leased snapshot
//! timestamp (validated at commit), write back derived values, retry on
//! validation abort — the write-only vs read-write commit-rate gap is the
//! cost of OCC read validation. The table reports total operations/s,
//! committed transactions/s, conflict retries and (rw) validation
//! failures; a chunked background recycler sweeps the shards round-robin
//! and the per-shard bundle-entry stats are printed after each run.
//!
//! Usage:
//! `cargo run --release -p workloads --bin store_txn -- [store-skiplist|store-citrus|store-list] [--mix <label>] [--json <path>] [--obs] [--trace <path>] [--timeseries <ms>] [--serve <addr>] [--slo <spec>]`
//! (default: all three backends, all mixes). `--mix rw` selects the
//! read-write mix only; `--json` additionally writes one machine-readable
//! record per configuration; `--obs` builds each store over a live
//! `obs::MetricsRegistry`, prints the metrics table after the last
//! thread count of each mix (commit-pipeline stage latencies, conflict
//! causes, per-shard skew, rw retries), and merges the flattened `obs.*`
//! metrics into the `--json` records. `--trace <path>` dumps the flight
//! recorder of the last configuration as JSON lines; `--timeseries <ms>`
//! samples every run at the given cadence from a dedicated background
//! thread, prints one JSON line per window (commit rate, conflict rate,
//! per-shard skew), and embeds the windows in the `--json` records —
//! both imply `--obs`. `--serve <addr>` (e.g. `127.0.0.1:0`) starts the
//! live introspection endpoint (`obs::export`: `/metrics` Prometheus
//! text, `/snapshot.json`, `/windows.json`, `/anomalies.json`,
//! `/health.json`) and prints `serving on <bound addr>`; `--slo <spec>`
//! (comma-separated `key=value` over [`obs::SloPolicy`] defaults, `""`
//! for the defaults) runs a health monitor over the sampling windows
//! and embeds its findings in the `--json` records — both imply
//! `--obs`, and `--slo` defaults `--timeseries` to 100 ms when unset.
//! Thread counts come from `BUNDLE_THREADS`, duration from
//! `BUNDLE_DURATION_MS`, shard count from `BUNDLE_SHARDS` (single
//! value; default [`workloads::DEFAULT_STORE_SHARDS`]).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use store::{uniform_splits, BundledStore, ShardBackend};
use txn::StoreTxnExt;
use workloads::{
    duration_ms, print_series_table, thread_counts, write_csv, write_json, Point, RunRecord,
    StructureKind, DEFAULT_STORE_SHARDS, SCHEMA_VERSION, TXN_STORE_KINDS,
};

/// Keys per write-only transaction (drawn uniformly, so a batch usually
/// spans several shards).
const BATCH: usize = 4;
/// Keys per range query.
const RQ_SPAN: u64 = 100;
/// Keyspace.
const KEY_RANGE: u64 = 100_000;

/// A `T − G − RQ` traffic mix (txn / snapshot-get / range-query percent);
/// `rw` switches the txn slice from write-only batches to serializable
/// read-modify-write transactions.
#[derive(Clone, Copy)]
struct TxnMix {
    txn_pct: u64,
    get_pct: u64,
    rw: bool,
}

const MIXES: [(&str, TxnMix); 4] = [
    (
        "20-70-10",
        TxnMix {
            txn_pct: 20,
            get_pct: 70,
            rw: false,
        },
    ),
    (
        "50-40-10",
        TxnMix {
            txn_pct: 50,
            get_pct: 40,
            rw: false,
        },
    ),
    (
        "80-0-20",
        TxnMix {
            txn_pct: 80,
            get_pct: 0,
            rw: false,
        },
    ),
    (
        "rw-50-40-10",
        TxnMix {
            txn_pct: 50,
            get_pct: 40,
            rw: true,
        },
    ),
];

fn shard_count() -> usize {
    std::env::var("BUNDLE_SHARDS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_STORE_SHARDS)
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

struct MixResult {
    ops_per_sec: f64,
    commits_per_sec: f64,
    conflicts: u64,
    validation_failures: u64,
}

/// Everything one `run_mix` configuration produced.
struct MixRun {
    result: MixResult,
    per_shard: Vec<usize>,
    snapshot: Option<obs::MetricsSnapshot>,
    windows: Vec<obs::Window>,
    health: Vec<obs::health::Finding>,
    trace: Option<Arc<obs::TraceRecorder>>,
}

#[allow(clippy::too_many_arguments)]
fn run_mix<S>(
    threads: usize,
    dur: Duration,
    mix: TxnMix,
    shards: usize,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    kind_name: &str,
) -> MixRun
where
    S: ShardBackend<u64, u64> + Send + Sync + 'static,
{
    // Reserved slots beyond the workers: tid `threads` for the background
    // recycler, tid `threads + 1` for the time-series sampler (only when
    // sampling), and the next tid for the export server's snapshot
    // closure (only when serving — scrapes serialize on the server's
    // sources mutex, so one reserved handle is race-free).
    let splits = uniform_splits(shards, KEY_RANGE);
    let serving = server.is_some() && with_obs;
    let slots = threads + 1 + usize::from(timeseries.is_some()) + usize::from(serving);
    let store = Arc::new(if with_obs {
        BundledStore::<u64, u64, S>::with_obs(
            slots,
            store::ReclaimMode::Reclaim,
            splits,
            &obs::MetricsRegistry::new(),
        )
    } else {
        BundledStore::<u64, u64, S>::new(slots, splits)
    });
    // The health monitor consumes each sampling window as it closes.
    let monitor = slo.and_then(|policy| {
        store.obs_registry().map(|registry| {
            Arc::new(obs::HealthMonitor::new(
                policy.clone(),
                registry,
                store.obs_trace().cloned(),
            ))
        })
    });
    // Spawn the sampler before the prefill so its base snapshot sees zero
    // counters: the per-window deltas then sum exactly to the final
    // `store.shard<i>.ops` counters (the reconciliation the tests gate).
    let sampler = timeseries.filter(|_| with_obs).map(|every| {
        let st = Arc::clone(&store);
        let tid = threads + 1;
        let observer = monitor.as_ref().map(|m| {
            let m = Arc::clone(m);
            Box::new(move |w: &obs::Window| {
                let _ = m.observe(w);
            }) as obs::timeseries::WindowObserver
        });
        let dropped = store
            .obs_registry()
            .map(|r| r.gauge("obs.timeseries.dropped_windows"));
        obs::TimeseriesSampler::spawn_with(
            every,
            obs::timeseries::DEFAULT_WINDOW_CAPACITY,
            move || st.obs_snapshot(tid).expect("store built with obs"),
            observer,
            dropped,
        )
    });
    // Install this run's sources before the prefill so scrapes answer
    // for the whole run (the last run's sources stay installed after it
    // ends, so post-run scrapes still answer).
    if serving {
        let server = server.expect("serving implies a server");
        let server_tid = threads + 1 + usize::from(timeseries.is_some());
        let st = Arc::clone(&store);
        let mut sources = obs::ExportSources::new()
            .with_snapshot(move || st.obs_snapshot(server_tid).expect("store built with obs"))
            .with_build_info(vec![
                ("schema".into(), SCHEMA_VERSION.to_string()),
                ("bench".into(), "store_txn".into()),
                ("backend".into(), kind_name.into()),
                ("durability".into(), "off".into()),
            ]);
        if let Some(s) = &sampler {
            let reader = s.reader();
            sources = sources.with_windows(move || reader.windows());
        }
        if let Some(tr) = store.obs_trace().cloned() {
            sources = sources.with_anomalies(move || tr.anomalies());
        }
        if let Some(m) = &monitor {
            let m = Arc::clone(m);
            sources = sources.with_health(move || m.report().json());
        }
        server.install(sources);
    }
    // Prefill half the keyspace (the harness convention).
    {
        let h = store.register();
        for k in (0..KEY_RANGE).step_by(2) {
            h.insert(k, k);
        }
    }
    let recycler = store.spawn_recycler(threads, Duration::from_millis(5));

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let handle = store.register();
                let mut seed = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut out = Vec::new();
                let mut local_ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let dice = xorshift(&mut seed) % 100;
                    if dice < mix.txn_pct {
                        if mix.rw {
                            // Serializable read-modify-write: read half a
                            // batch at one leased timestamp, write back
                            // derived values; stale reads retry.
                            let keys: Vec<u64> = (0..BATCH / 2)
                                .map(|_| xorshift(&mut seed) % KEY_RANGE)
                                .collect();
                            handle.run_rw(|txn| {
                                for k in &keys {
                                    match txn.get(k) {
                                        Some(v) => txn.set(*k, v.wrapping_add(1)),
                                        None => txn.put(*k, 1),
                                    };
                                }
                            });
                            local_ops += BATCH as u64; // reads + writes
                        } else {
                            let mut txn = handle.txn();
                            for _ in 0..BATCH {
                                let k = xorshift(&mut seed) % KEY_RANGE;
                                if xorshift(&mut seed).is_multiple_of(2) {
                                    txn.put(k, k);
                                } else {
                                    txn.remove(&k);
                                }
                            }
                            txn.commit();
                            local_ops += BATCH as u64;
                        }
                    } else if dice < mix.txn_pct + mix.get_pct {
                        let k = xorshift(&mut seed) % KEY_RANGE;
                        let _ = handle.snapshot_get(&k);
                        local_ops += 1;
                    } else {
                        let lo = xorshift(&mut seed) % (KEY_RANGE - RQ_SPAN);
                        handle.range_query(&lo, &(lo + RQ_SPAN), &mut out);
                        local_ops += 1;
                    }
                }
                ops.fetch_add(local_ops, Ordering::Relaxed);
            })
        })
        .collect();

    let start = Instant::now();
    std::thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("store_txn worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    recycler.stop();
    // Stop the sampler only after every mutator is quiescent: the final
    // (partial) window then closes on the same counter values the final
    // snapshot reports, so the window deltas reconcile exactly.
    let windows = sampler
        .map(obs::TimeseriesSampler::stop)
        .unwrap_or_default();
    let stats = store.txn_stats();
    let per_shard = store.per_shard_bundle_entries(0);
    let snapshot = store.obs_snapshot(0);
    MixRun {
        result: MixResult {
            ops_per_sec: ops.load(Ordering::Relaxed) as f64 / elapsed,
            commits_per_sec: stats.commits as f64 / elapsed,
            conflicts: stats.conflicts,
            validation_failures: stats.validation_failures,
        },
        per_shard,
        snapshot,
        windows,
        health: monitor.map(|m| m.report().findings).unwrap_or_default(),
        trace: store.obs_trace().cloned(),
    }
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    kind: StructureKind,
    mix_filter: Option<&str>,
    with_obs: bool,
    timeseries: Option<Duration>,
    slo: Option<&obs::SloPolicy>,
    server: Option<&obs::ExportServer>,
    records: &mut Vec<RunRecord>,
    last_trace: &mut Option<Arc<obs::TraceRecorder>>,
) {
    let shards = shard_count();
    let dur = Duration::from_millis(duration_ms());
    for (mix_label, mix) in MIXES {
        if let Some(f) = mix_filter {
            // `--mix rw` selects the rw mix; otherwise match the label.
            let selected = mix_label == f || (f == "rw" && mix.rw);
            if !selected {
                continue;
            }
        }
        let mut points = Vec::new();
        let mut shard_stats: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut last_snapshot = None;
        for &threads in &thread_counts() {
            let name = kind.name();
            let run = match kind {
                StructureKind::StoreSkipList => run_mix::<skiplist::BundledSkipList<u64, u64>>(
                    threads, dur, mix, shards, with_obs, timeseries, slo, server, name,
                ),
                StructureKind::StoreCitrus => run_mix::<citrus::BundledCitrusTree<u64, u64>>(
                    threads, dur, mix, shards, with_obs, timeseries, slo, server, name,
                ),
                StructureKind::StoreList => run_mix::<lazylist::BundledLazyList<u64, u64>>(
                    threads, dur, mix, shards, with_obs, timeseries, slo, server, name,
                ),
                other => panic!("{other:?} is not a sharded store kind"),
            };
            let MixRun {
                result: r,
                per_shard,
                snapshot,
                windows,
                health,
                trace,
            } = run;
            for w in &windows {
                println!("{}", w.json_line());
            }
            for f in &health {
                println!("slo finding: {}", obs::health::finding_json(f));
            }
            if trace.is_some() {
                *last_trace = trace;
            }
            points.push(Point {
                series: "ops/s".into(),
                x: threads.to_string(),
                y: r.ops_per_sec,
            });
            points.push(Point {
                series: "txn commits/s".into(),
                x: threads.to_string(),
                y: r.commits_per_sec,
            });
            points.push(Point {
                series: "txn conflicts".into(),
                x: threads.to_string(),
                y: r.conflicts as f64,
            });
            if mix.rw {
                points.push(Point {
                    series: "validation fails".into(),
                    x: threads.to_string(),
                    y: r.validation_failures as f64,
                });
            }
            let abort_rate = if r.commits_per_sec > 0.0 {
                r.validation_failures as f64 / (r.commits_per_sec * dur.as_secs_f64())
            } else {
                0.0
            };
            let mut metrics = vec![
                ("ops_per_sec".into(), r.ops_per_sec),
                ("commits_per_sec".into(), r.commits_per_sec),
                ("conflicts".into(), r.conflicts as f64),
                ("validation_failures".into(), r.validation_failures as f64),
                ("abort_rate".into(), abort_rate),
            ];
            if let Some(snap) = snapshot {
                metrics.extend(snap.flatten("obs."));
                last_snapshot = Some(snap);
            }
            records.push(RunRecord {
                schema: SCHEMA_VERSION,
                bench: "store_txn".into(),
                kind: kind.name().into(),
                mix: mix_label.into(),
                threads,
                durability: "off".into(),
                metrics,
                windows: windows.iter().map(obs::Window::flatten).collect(),
                health,
            });
            shard_stats.push((threads, per_shard));
        }
        let title = format!(
            "store_txn [{}] mix {mix_label} (T-G-RQ), {shards} shards, batch {BATCH}",
            kind.name()
        );
        print_series_table(&title, "threads", "per second", &points);
        for (threads, per_shard) in shard_stats {
            println!("  bundle entries/shard @{threads} threads: {per_shard:?}");
        }
        if let Some(snap) = last_snapshot {
            println!(
                "\n-- obs [{}] mix {mix_label} (last thread count) --\n{}",
                kind.name(),
                snap.render_table()
            );
        }
        write_csv(
            &format!("store_txn_{}_{mix_label}", kind.name()),
            "threads",
            "per_sec",
            &points,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind_arg: Option<String> = None;
    let mut mix_filter: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut timeseries: Option<Duration> = None;
    let mut serve_addr: Option<String> = None;
    let mut slo: Option<obs::SloPolicy> = None;
    let mut with_obs = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                serve_addr = args.get(i + 1).cloned();
                if serve_addr.is_none() {
                    eprintln!("--serve requires an address (e.g. 127.0.0.1:0)");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--slo" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("--slo requires a spec (key=value,... or \"\" for defaults)");
                    std::process::exit(2);
                };
                match obs::SloPolicy::parse(spec) {
                    Ok(p) => slo = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                with_obs = true;
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).map(PathBuf::from);
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--mix" => {
                mix_filter = args.get(i + 1).cloned();
                if mix_filter.is_none() {
                    eprintln!("--mix requires a label (e.g. rw or 50-40-10)");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--trace" => {
                trace_path = args.get(i + 1).map(PathBuf::from);
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--timeseries" => {
                timeseries = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&ms| ms > 0)
                    .map(Duration::from_millis);
                if timeseries.is_none() {
                    eprintln!("--timeseries requires a window length in ms");
                    std::process::exit(2);
                }
                with_obs = true;
                i += 2;
            }
            "--obs" => {
                with_obs = true;
                i += 1;
            }
            other => {
                kind_arg = Some(other.to_string());
                i += 1;
            }
        }
    }

    let kinds: Vec<StructureKind> = match kind_arg.as_deref() {
        None => TXN_STORE_KINDS.to_vec(),
        Some(name) => match StructureKind::parse(name) {
            Some(kind) if kind.is_store() => vec![kind],
            _ => {
                eprintln!(
                    "unknown store kind {name:?}; expected one of: {}",
                    TXN_STORE_KINDS.map(|k| k.name()).join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    // The health monitor consumes sampling windows, so --slo without
    // --timeseries turns sampling on at a 100 ms cadence.
    if slo.is_some() && timeseries.is_none() {
        timeseries = Some(Duration::from_millis(100));
    }
    // One server across every run; each run installs its own sources
    // right after its store is built.
    let server = serve_addr.map(|addr| {
        match obs::ExportServer::spawn(addr.as_str(), obs::ExportSources::new()) {
            Ok(s) => {
                println!("serving on {}", s.local_addr());
                s
            }
            Err(e) => {
                eprintln!("--serve {addr}: bind failed: {e}");
                std::process::exit(2);
            }
        }
    });
    let mut records = Vec::new();
    let mut last_trace = None;
    for kind in kinds {
        sweep(
            kind,
            mix_filter.as_deref(),
            with_obs,
            timeseries,
            slo.as_ref(),
            server.as_ref(),
            &mut records,
            &mut last_trace,
        );
    }
    if let Some(path) = trace_path {
        match workloads::write_trace_dump(&path, last_trace.as_deref()) {
            Ok(lines) => println!("wrote {lines} trace lines to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = json_path {
        match write_json(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} run records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
