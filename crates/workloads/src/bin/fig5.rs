//! Figure 5 (Appendix A): weakening linearizability — throughput of the
//! bundled skip list relative to the linearizable (T = 1) configuration for
//! relaxation thresholds T ∈ {1, 2, 5, 10, 50, ∞}, under different update
//! percentages (the range query share is fixed at 50%, as in the 50−0−50
//! experiment the appendix builds on).

use std::sync::Arc;

use workloads::registry::make_relaxed_structure;
use workloads::{
    duration_ms, print_series_table, run_workload, thread_counts, write_csv, Point, RunConfig,
    StructureKind, WorkloadMix,
};

/// 0 encodes T = ∞ (never advance the clock).
const THRESHOLDS: [u64; 6] = [1, 2, 5, 10, 50, 0];
const UPDATE_PCTS: [u32; 4] = [0, 10, 50, 90];

fn main() {
    let threads = *thread_counts().last().unwrap_or(&2);
    let mut points = Vec::new();
    for &u in &UPDATE_PCTS {
        let rq = 100 - u.min(50); // keep a large RQ share as in Appendix A
        let mix = WorkloadMix::new(u, 100 - u - rq.min(100 - u), rq.min(100 - u));
        let cfg = RunConfig::new(threads, duration_ms(), RunConfig::TREE_KEY_RANGE, mix);
        let baseline = {
            let s = make_relaxed_structure(StructureKind::SkipListBundle, threads, 1);
            run_workload(&Arc::clone(&s), &cfg).mops()
        };
        for &t in &THRESHOLDS {
            let s = make_relaxed_structure(StructureKind::SkipListBundle, threads, t);
            let m = run_workload(&Arc::clone(&s), &cfg).mops();
            let label = if t == 0 {
                "inf".to_string()
            } else {
                t.to_string()
            };
            points.push(Point {
                series: format!("{}% updates", u),
                x: format!("T={label}"),
                y: if baseline > 0.0 { m / baseline } else { 0.0 },
            });
        }
    }
    print_series_table(
        "Figure 5: relaxed timestamps, skip list, relative to T=1",
        "threshold",
        "ratio",
        &points,
    );
    write_csv(
        "fig5_relaxation",
        "threshold",
        "relative_throughput",
        &points,
    );
}
