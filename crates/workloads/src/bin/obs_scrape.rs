//! Minimal pure-std scrape client for the `--serve` introspection
//! endpoint — the CI smoke steps use it instead of `curl` (the offline
//! image has no HTTP tooling).
//!
//! Usage:
//! `obs_scrape <host:port> <path> [--expect <substring>] [--retries <n>]`
//!
//! Connects to `<host:port>` (retrying while the serving process warms
//! up), issues one `GET <path>` over HTTP/1.0, prints the response body
//! to stdout, and exits non-zero when the status line is not `200 OK`
//! or the body is missing a required `--expect` substring (repeatable).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Delay between connect attempts while the server warms up.
const RETRY_DELAY: Duration = Duration::from_millis(100);

/// Per-connection read/write deadline — a wedged server fails the
/// scrape instead of hanging CI.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn connect(addr: &str, retries: u32) -> Result<TcpStream, std::io::Error> {
    let mut last = None;
    for attempt in 0..retries.max(1) {
        if attempt > 0 {
            std::thread::sleep(RETRY_DELAY);
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
}

fn scrape(addr: &str, path: &str, retries: u32) -> Result<(String, String), String> {
    let mut stream = connect(addr, retries).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| format!("set timeouts: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response ({} bytes, no header end)", raw.len()))?;
    let status = head.lines().next().unwrap_or_default().to_string();
    Ok((status, body.to_string()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: obs_scrape <host:port> <path> [--expect <substring>] [--retries <n>]";
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let mut expects: Vec<String> = Vec::new();
    let mut retries: u32 = 50;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" => {
                let Some(s) = args.get(i + 1) else {
                    eprintln!("--expect requires a substring\n{usage}");
                    std::process::exit(2);
                };
                expects.push(s.clone());
                i += 2;
            }
            "--retries" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("--retries requires a count\n{usage}");
                    std::process::exit(2);
                };
                retries = n;
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let (status, body) = match scrape(addr, path, retries) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs_scrape {addr}{path}: {e}");
            std::process::exit(1);
        }
    };
    print!("{body}");
    if !status.contains("200") {
        eprintln!("obs_scrape {addr}{path}: non-200 status {status:?}");
        std::process::exit(1);
    }
    for want in &expects {
        if !body.contains(want.as_str()) {
            eprintln!("obs_scrape {addr}{path}: body is missing expected {want:?}");
            std::process::exit(1);
        }
    }
}
