//! Benchmark harness reproducing the paper's evaluation (§8 + appendices).
//!
//! The harness mirrors the methodology of the paper's C++ framework:
//!
//! * structures are prefilled with half of the keys in their key range,
//! * worker threads run a `U − C − RQ` operation mix (update / contains /
//!   range-query percentages) for a fixed duration,
//! * updates are split evenly between inserts and removes so the structure
//!   size stays stable,
//! * target keys are drawn uniformly from the key range,
//! * throughput is reported in Mops/s.
//!
//! Every figure/table of the paper has a corresponding binary in
//! `src/bin/` (fig2, fig3, fig4, fig5, table1, list_relative) and a
//! Criterion bench in the `bench` crate. Thread counts and run duration are
//! configurable through `BUNDLE_THREADS` (comma-separated) and
//! `BUNDLE_DURATION_MS` so the same harness scales from this repository's
//! CI-sized runs to a large multicore machine.

pub mod config;
pub mod driver;
pub mod registry;
pub mod report;

pub use config::{RunConfig, WorkloadMix};
pub use driver::{run_workload, Throughput};
pub use registry::{
    make_obs_store_structure, make_store_structure, make_structure, ObsSampler, ObsSnapshotSource,
    ObsStoreParts, StructureKind, ALL_KINDS, DEFAULT_STORE_SHARDS, TXN_STORE_KINDS,
};
pub use report::{
    print_series_table, write_csv, write_json, write_trace_dump, Point, RunRecord, SCHEMA_VERSION,
};

/// Thread counts to sweep, from `BUNDLE_THREADS` (default "1,2,4").
pub fn thread_counts() -> Vec<usize> {
    std::env::var("BUNDLE_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

/// Per-configuration run duration in milliseconds, from
/// `BUNDLE_DURATION_MS` (default 200 ms; the paper uses 3 s × 3 runs).
pub fn duration_ms() -> u64 {
    std::env::var("BUNDLE_DURATION_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}
