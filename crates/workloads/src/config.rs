//! Workload configuration: the paper's `U − C − RQ` mixes and run settings.

/// An operation mix, written `U − C − RQ` in the paper: percentages of
/// update, contains and range-query operations (summing to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Percentage of updates (split evenly between inserts and removes).
    pub update_pct: u32,
    /// Percentage of single-key contains operations.
    pub contains_pct: u32,
    /// Percentage of range queries.
    pub rq_pct: u32,
}

impl WorkloadMix {
    /// Build a mix, asserting the percentages sum to 100.
    pub const fn new(update_pct: u32, contains_pct: u32, rq_pct: u32) -> Self {
        assert!(update_pct + contains_pct + rq_pct == 100);
        WorkloadMix {
            update_pct,
            contains_pct,
            rq_pct,
        }
    }

    /// The five mixes of Figure 2: `2−88−10`, `10−80−10`, `50−40−10`,
    /// `90−0−10`, `0−90−10`.
    pub const FIGURE2: [WorkloadMix; 5] = [
        WorkloadMix::new(2, 88, 10),
        WorkloadMix::new(10, 80, 10),
        WorkloadMix::new(50, 40, 10),
        WorkloadMix::new(90, 0, 10),
        WorkloadMix::new(0, 90, 10),
    ];

    /// The `50−0−50` mix used by Figure 3 and the Appendix A experiment.
    pub const HALF_UPDATES_HALF_RQ: WorkloadMix = WorkloadMix::new(50, 0, 50);

    /// Label in the paper's `U − C − RQ` notation.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.update_pct, self.contains_pct, self.rq_pct)
    }
}

/// A complete run configuration for [`crate::run_workload`].
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Wall-clock duration of the measurement in milliseconds.
    pub duration_ms: u64,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Number of keys in a range query (`[k, k + rq_size)`).
    pub rq_size: u64,
    /// Operation mix.
    pub mix: WorkloadMix,
    /// Prefill the structure with `key_range / 2` keys before measuring
    /// (the paper's initialization).
    pub prefill: bool,
}

impl RunConfig {
    /// A configuration with the paper's defaults for the given structure
    /// size: 10% range queries of 50 keys over a `key_range` keyspace.
    pub fn new(threads: usize, duration_ms: u64, key_range: u64, mix: WorkloadMix) -> Self {
        RunConfig {
            threads,
            duration_ms,
            key_range,
            rq_size: 50,
            mix,
            prefill: true,
        }
    }

    /// Paper default key range for the skip list and Citrus tree (100,000).
    pub const TREE_KEY_RANGE: u64 = 100_000;
    /// Paper default key range for the lazy list (10,000).
    pub const LIST_KEY_RANGE: u64 = 10_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_mixes_match_paper() {
        let labels: Vec<String> = WorkloadMix::FIGURE2.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["2-88-10", "10-80-10", "50-40-10", "90-0-10", "0-90-10"]
        );
        for m in WorkloadMix::FIGURE2 {
            assert_eq!(m.update_pct + m.contains_pct + m.rq_pct, 100);
        }
    }

    #[test]
    fn run_config_defaults() {
        let cfg = RunConfig::new(
            4,
            100,
            RunConfig::TREE_KEY_RANGE,
            WorkloadMix::new(50, 40, 10),
        );
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.key_range, 100_000);
        assert_eq!(cfg.rq_size, 50);
        assert!(cfg.prefill);
    }
}
