//! Table/CSV output helpers shared by the figure binaries.

use std::io::Write;
use std::path::PathBuf;

/// One measured point of a series (e.g. one thread count of one structure).
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (structure / technique name).
    pub series: String,
    /// X value label (thread count, range query size, threshold, ...).
    pub x: String,
    /// Y value (throughput in Mops/s or a ratio, depending on the figure).
    pub y: f64,
}

/// Print a figure-style table: one row per x value, one column per series.
pub fn print_series_table(title: &str, x_name: &str, y_name: &str, points: &[Point]) {
    println!("\n== {title} ==  ({y_name})");
    let mut series: Vec<String> = Vec::new();
    let mut xs: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
        if !xs.contains(&p.x) {
            xs.push(p.x.clone());
        }
    }
    print!("{x_name:>12}");
    for s in &series {
        print!("  {s:>18}");
    }
    println!();
    for x in &xs {
        print!("{x:>12}");
        for s in &series {
            let v = points
                .iter()
                .find(|p| &p.x == x && &p.series == s)
                .map(|p| p.y);
            match v {
                Some(v) => print!("  {v:>18.3}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Write the raw points as CSV under `target/experiments/<name>.csv` so the
/// plots can be regenerated offline; returns the path written.
pub fn write_csv(name: &str, x_name: &str, y_name: &str, points: &[Point]) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "series,{x_name},{y_name}");
        for p in points {
            let _ = writeln!(f, "{},{},{}", p.series, p.x, p.y);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_written_with_all_points() {
        let pts = vec![
            Point {
                series: "a".into(),
                x: "1".into(),
                y: 1.5,
            },
            Point {
                series: "b".into(),
                x: "1".into(),
                y: 2.5,
            },
        ];
        let path = write_csv("unit_test_report", "threads", "mops", &pts);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("series,threads,mops"));
        assert!(content.contains("a,1,1.5"));
        assert!(content.contains("b,1,2.5"));
        // Table printing should not panic.
        print_series_table("unit", "threads", "mops", &pts);
    }
}
