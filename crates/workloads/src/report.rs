//! Table/CSV output helpers shared by the figure binaries.

use std::io::Write;
use std::path::PathBuf;

/// One measured point of a series (e.g. one thread count of one structure).
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (structure / technique name).
    pub series: String,
    /// X value label (thread count, range query size, threshold, ...).
    pub x: String,
    /// Y value (throughput in Mops/s or a ratio, depending on the figure).
    pub y: f64,
}

/// Print a figure-style table: one row per x value, one column per series.
pub fn print_series_table(title: &str, x_name: &str, y_name: &str, points: &[Point]) {
    println!("\n== {title} ==  ({y_name})");
    let mut series: Vec<String> = Vec::new();
    let mut xs: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
        if !xs.contains(&p.x) {
            xs.push(p.x.clone());
        }
    }
    print!("{x_name:>12}");
    for s in &series {
        print!("  {s:>18}");
    }
    println!();
    for x in &xs {
        print!("{x:>12}");
        for s in &series {
            let v = points
                .iter()
                .find(|p| &p.x == x && &p.series == s)
                .map(|p| p.y);
            match v {
                Some(v) => print!("  {v:>18.3}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Version of the `--json` record layout. Bump whenever the shape of
/// [`RunRecord`] serialization changes (fields added/renamed/removed) so
/// downstream consumers can dispatch on `schema` instead of sniffing
/// keys. History: 1 = original (implicit, no `schema` key); 2 = adds the
/// `schema` field itself and the flattened `obs.*` metric namespace;
/// 3 = adds the `windows` array of per-window time-series summaries
/// (empty unless the run sampled with `--timeseries`);
/// 4 = adds the `store_ingest` submit-path contention panel records
/// (`mix` `"submit-path"` with `submit_ns_per_op_locked` /
/// `submit_ns_per_op_ring` / `submit_speedup` metrics);
/// 5 = adds the `health` array of SLO findings (`obs::health` critical
/// transitions; empty unless the run monitored with `--slo`) and the
/// `finalize_p99_ns` field inside each `windows` entry;
/// 6 = adds the `durability` field (the WAL sync-policy label — `"off"`,
/// `"always"`, or `"every=N"`; `"off"` for runs without a commit log)
/// so dashboards can segregate durable from volatile runs.
pub const SCHEMA_VERSION: u32 = 6;

/// One machine-readable benchmark run for `--json` output: a scenario
/// binary records one `RunRecord` per (backend, mix, thread count)
/// configuration it measured, with the named numeric results in
/// `metrics` (throughput, commit rate, abort counters, ...).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Record layout version; always [`SCHEMA_VERSION`] for records
    /// produced by this build.
    pub schema: u32,
    /// Scenario binary name (e.g. `store_txn`).
    pub bench: String,
    /// Structure / backend under test.
    pub kind: String,
    /// Workload mix label.
    pub mix: String,
    /// Worker thread count.
    pub threads: usize,
    /// Durability configuration of the run: the WAL sync-policy label
    /// (`"always"`, `"every=N"`) or `"off"` when the store ran without
    /// a commit log.
    pub durability: String,
    /// Named numeric results.
    pub metrics: Vec<(String, f64)>,
    /// Per-window time-series summaries (one inner vec per sampling
    /// window, each the flattened `obs::timeseries::Window` shape —
    /// `commits_per_s`, `conflict_rate`, `skew.max_share`,
    /// `shard<i>.ops`, ...). Empty when the run did not sample.
    pub windows: Vec<Vec<(String, f64)>>,
    /// SLO findings (`obs::health` critical escalations, e.g. the
    /// `hot_shard` resharding trigger) the run's health monitor
    /// recorded. Empty when the run did not monitor (`--slo` unset) —
    /// the key is always present, like `windows`.
    pub health: Vec<obs::health::Finding>,
}

/// Serialize `records` as a JSON array to `path` (hand-rolled writer —
/// the offline build has no serde; names are plain ASCII identifiers, so
/// Rust string-debug escaping is valid JSON escaping here). Returns an
/// error only on I/O failure.
pub fn write_json(path: &std::path::Path, records: &[RunRecord]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "[")?;
    for (i, r) in records.iter().enumerate() {
        write!(
            f,
            "  {{\"schema\":{},\"bench\":{:?},\"kind\":{:?},\"mix\":{:?},\"threads\":{},\"durability\":{:?}",
            r.schema, r.bench, r.kind, r.mix, r.threads, r.durability
        )?;
        for (name, value) in &r.metrics {
            let value = if value.is_finite() { *value } else { 0.0 };
            write!(f, ",{name:?}:{value}")?;
        }
        write!(f, ",\"windows\":[")?;
        for (wi, window) in r.windows.iter().enumerate() {
            write!(f, "{}{{", if wi == 0 { "" } else { "," })?;
            for (fi, (name, value)) in window.iter().enumerate() {
                let value = if value.is_finite() { *value } else { 0.0 };
                write!(f, "{}{name:?}:{value}", if fi == 0 { "" } else { "," })?;
            }
            write!(f, "}}")?;
        }
        write!(f, "]")?;
        write!(f, ",\"health\":[")?;
        for (fi, finding) in r.health.iter().enumerate() {
            let sep = if fi == 0 { "" } else { "," };
            write!(f, "{sep}{}", obs::health::finding_json(finding))?;
        }
        write!(f, "]")?;
        writeln!(f, "}}{}", if i + 1 == records.len() { "" } else { "," })?;
    }
    writeln!(f, "]")?;
    Ok(())
}

/// Dump a store's flight recorder to `path` as JSON lines
/// ([`obs::TraceRecorder::write_dump`]) and return the number of lines
/// written. An absent recorder is an I/O error — the scenario binaries
/// only call this when `--trace` forced a live registry, so `None`
/// means the store was built without one.
pub fn write_trace_dump(
    path: &std::path::Path,
    trace: Option<&obs::TraceRecorder>,
) -> std::io::Result<usize> {
    let trace = trace.ok_or_else(|| std::io::Error::other("no flight recorder attached"))?;
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut buf = Vec::new();
    trace.write_dump(&mut buf)?;
    std::fs::write(path, &buf)?;
    Ok(buf.iter().filter(|&&b| b == b'\n').count())
}

/// Write the raw points as CSV under `target/experiments/<name>.csv` so the
/// plots can be regenerated offline; returns the path written.
pub fn write_csv(name: &str, x_name: &str, y_name: &str, points: &[Point]) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "series,{x_name},{y_name}");
        for p in points {
            let _ = writeln!(f, "{},{},{}", p.series, p.x, p.y);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_records_round_trip_structurally() {
        let records = vec![
            RunRecord {
                schema: SCHEMA_VERSION,
                bench: "store_txn".into(),
                kind: "store-skiplist".into(),
                mix: "rw-50-40-10".into(),
                threads: 4,
                durability: "off".into(),
                metrics: vec![("ops_per_sec".into(), 1234.5), ("aborts".into(), f64::NAN)],
                windows: vec![
                    vec![
                        ("window".into(), 0.0),
                        ("commits_per_s".into(), 55.5),
                        ("skew.max_share".into(), 0.5),
                    ],
                    vec![("window".into(), 1.0), ("commits_per_s".into(), f64::NAN)],
                ],
                health: vec![obs::health::Finding {
                    check: obs::HealthCheck::HotShard,
                    level: obs::HealthLevel::Critical,
                    window: 7,
                    value: 0.95,
                    threshold: 0.8,
                    shard: 3,
                }],
            },
            RunRecord {
                schema: SCHEMA_VERSION,
                bench: "store_txn".into(),
                kind: "store-list".into(),
                mix: "20-70-10".into(),
                threads: 1,
                durability: "always".into(),
                metrics: vec![("commits_per_sec".into(), 10.0)],
                windows: Vec::new(),
                health: Vec::new(),
            },
        ];
        let path = std::path::PathBuf::from("target/experiments/unit_test_report.json");
        write_json(&path, &records).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("[\n"));
        assert!(content.trim_end().ends_with(']'));
        assert!(content.contains("\"schema\":6,\"bench\":\"store_txn\""));
        assert!(content.contains("\"mix\":\"rw-50-40-10\""));
        assert!(content.contains("\"threads\":4,\"durability\":\"off\""));
        assert!(content.contains("\"threads\":1,\"durability\":\"always\""));
        assert!(content.contains("\"ops_per_sec\":1234.5"));
        assert!(
            content.contains("\"aborts\":0"),
            "non-finite values are zeroed"
        );
        // Embedded windows: both summaries serialized, in order, with
        // non-finite values zeroed; a run without sampling still carries
        // the (empty) array so the key is always present.
        assert!(content.contains(
            "\"windows\":[{\"window\":0,\"commits_per_s\":55.5,\"skew.max_share\":0.5},"
        ));
        assert!(content.contains("{\"window\":1,\"commits_per_s\":0}]"));
        assert!(content.contains("\"commits_per_sec\":10,\"windows\":[]"));
        // Health findings: serialized after windows; a run without a
        // monitor still carries the (empty) array.
        assert!(content.contains(
            "\"health\":[{\"check\":\"hot_shard\",\"level\":\"critical\",\"window\":7,\
             \"value\":0.95,\"threshold\":0.8,\"shard\":3}]"
        ));
        assert!(content.contains("\"windows\":[],\"health\":[]"));
    }

    #[test]
    fn trace_dump_written_with_line_count() {
        let rec = obs::TraceRecorder::new(1, 8);
        rec.record(0, obs::TraceKind::StageEnd, 0, 17);
        rec.record(0, obs::TraceKind::Conflict, 3, 2);
        let path = std::path::PathBuf::from("target/experiments/unit_test_trace.jsonl");
        let lines = write_trace_dump(&path, Some(&rec)).unwrap();
        assert_eq!(lines, 2);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("\"type\":\"event\""));
        assert!(write_trace_dump(&path, None).is_err(), "absent recorder");
    }

    #[test]
    fn csv_written_with_all_points() {
        let pts = vec![
            Point {
                series: "a".into(),
                x: "1".into(),
                y: 1.5,
            },
            Point {
                series: "b".into(),
                x: "1".into(),
                y: 2.5,
            },
        ];
        let path = write_csv("unit_test_report", "threads", "mops", &pts);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("series,threads,mops"));
        assert!(content.contains("a,1,1.5"));
        assert!(content.contains("b,1,2.5"));
        // Table printing should not panic.
        print_series_table("unit", "threads", "mops", &pts);
    }
}
