//! Uniform construction of every benchmarked structure variant.

use std::sync::Arc;

use bundle::api::RangeQuerySet;
use citrus::{BundledCitrusTree, UnsafeCitrusTree};
use lazylist::{BundledLazyList, UnsafeLazyList};
use skiplist::{BundledSkipList, UnsafeSkipList};
use store::{uniform_splits, CitrusStore, LazyListStore, ReclaimMode, SkipListStore};

/// Shard count used by the `Store*` registry kinds (the `store_scaling`
/// binary sweeps other counts explicitly).
pub const DEFAULT_STORE_SHARDS: usize = 8;

/// A dynamically-dispatched ordered set with range queries over `u64` keys
/// and values — the interface the whole harness drives.
pub type DynSet = dyn RangeQuerySet<u64, u64> + Send + Sync;

/// Every structure/technique combination the harness can benchmark.
///
/// `*Bundle` are the paper's contribution; `*Unsafe` are the
/// non-linearizable reference implementations the paper normalizes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// Bundled lazy skip list (§5).
    SkipListBundle,
    /// Unsafe lazy skip list baseline.
    SkipListUnsafe,
    /// Bundled Citrus-style BST (§6).
    CitrusBundle,
    /// Unsafe Citrus-style BST baseline.
    CitrusUnsafe,
    /// Bundled lazy linked list (§4).
    ListBundle,
    /// Unsafe lazy linked list baseline.
    ListUnsafe,
    /// Sharded store over bundled skip lists (`store` crate,
    /// [`DEFAULT_STORE_SHARDS`] shards, linearizable cross-shard RQs).
    StoreSkipList,
    /// Sharded store over bundled Citrus trees.
    StoreCitrus,
    /// Sharded store over bundled lazy lists.
    StoreList,
}

/// The sharded-store kinds the `store_txn` scenario drives with mixed
/// transactional traffic (cross-shard write transactions / snapshot gets /
/// range queries).
pub const TXN_STORE_KINDS: [StructureKind; 3] = [
    StructureKind::StoreSkipList,
    StructureKind::StoreCitrus,
    StructureKind::StoreList,
];

/// All benchmarkable kinds, in the order the figures report them.
pub const ALL_KINDS: [StructureKind; 9] = [
    StructureKind::SkipListBundle,
    StructureKind::SkipListUnsafe,
    StructureKind::CitrusBundle,
    StructureKind::CitrusUnsafe,
    StructureKind::ListBundle,
    StructureKind::ListUnsafe,
    StructureKind::StoreSkipList,
    StructureKind::StoreCitrus,
    StructureKind::StoreList,
];

impl StructureKind {
    /// Look a kind up by its [`StructureKind::name`] (CLI parsing).
    #[must_use]
    pub fn parse(name: &str) -> Option<StructureKind> {
        ALL_KINDS.iter().find(|k| k.name() == name).copied()
    }

    /// Short display name used in tables and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::SkipListBundle => "skiplist-bundle",
            StructureKind::SkipListUnsafe => "skiplist-unsafe",
            StructureKind::CitrusBundle => "citrus-bundle",
            StructureKind::CitrusUnsafe => "citrus-unsafe",
            StructureKind::ListBundle => "list-bundle",
            StructureKind::ListUnsafe => "list-unsafe",
            StructureKind::StoreSkipList => "store-skiplist",
            StructureKind::StoreCitrus => "store-citrus",
            StructureKind::StoreList => "store-list",
        }
    }

    /// `true` for the variants with linearizable range queries (bundled
    /// structures and the sharded stores built on them).
    pub fn is_bundled(&self) -> bool {
        !matches!(
            self,
            StructureKind::SkipListUnsafe | StructureKind::CitrusUnsafe | StructureKind::ListUnsafe
        )
    }

    /// `true` for the sharded-store variants.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            StructureKind::StoreSkipList | StructureKind::StoreCitrus | StructureKind::StoreList
        )
    }

    /// The `Unsafe` baseline for the same underlying data structure (for a
    /// store, the baseline of its per-shard backend).
    pub fn unsafe_counterpart(&self) -> StructureKind {
        match self {
            StructureKind::SkipListBundle
            | StructureKind::SkipListUnsafe
            | StructureKind::StoreSkipList => StructureKind::SkipListUnsafe,
            StructureKind::CitrusBundle
            | StructureKind::CitrusUnsafe
            | StructureKind::StoreCitrus => StructureKind::CitrusUnsafe,
            StructureKind::ListBundle | StructureKind::ListUnsafe | StructureKind::StoreList => {
                StructureKind::ListUnsafe
            }
        }
    }

    /// The paper's default key range for this data structure (10k for the
    /// list, 100k for the skip list and tree; stores follow their backend).
    pub fn default_key_range(&self) -> u64 {
        match self {
            StructureKind::ListBundle | StructureKind::ListUnsafe | StructureKind::StoreList => {
                10_000
            }
            _ => 100_000,
        }
    }
}

/// Construct a structure of the given kind supporting `max_threads`
/// registered worker threads.
///
/// Store kinds shard the kind's default key range over
/// [`DEFAULT_STORE_SHARDS`] uniform range shards (keys beyond the range
/// all land in the last shard); use [`make_store_structure`] to choose the
/// shard count and key range explicitly.
pub fn make_structure(kind: StructureKind, max_threads: usize) -> Arc<DynSet> {
    match kind {
        StructureKind::SkipListBundle => Arc::new(BundledSkipList::<u64, u64>::new(max_threads)),
        StructureKind::SkipListUnsafe => Arc::new(UnsafeSkipList::<u64, u64>::new(max_threads)),
        StructureKind::CitrusBundle => Arc::new(BundledCitrusTree::<u64, u64>::new(max_threads)),
        StructureKind::CitrusUnsafe => Arc::new(UnsafeCitrusTree::<u64, u64>::new(max_threads)),
        StructureKind::ListBundle => Arc::new(BundledLazyList::<u64, u64>::new(max_threads)),
        StructureKind::ListUnsafe => Arc::new(UnsafeLazyList::<u64, u64>::new(max_threads)),
        store_kind @ (StructureKind::StoreSkipList
        | StructureKind::StoreCitrus
        | StructureKind::StoreList) => make_store_structure(
            store_kind,
            max_threads,
            DEFAULT_STORE_SHARDS,
            store_kind.default_key_range(),
        ),
    }
}

/// Construct a sharded store with an explicit shard count and key range.
/// Panics for non-store kinds.
pub fn make_store_structure(
    kind: StructureKind,
    max_threads: usize,
    shards: usize,
    key_range: u64,
) -> Arc<DynSet> {
    let splits = uniform_splits(shards, key_range);
    match kind {
        StructureKind::StoreSkipList => {
            Arc::new(SkipListStore::<u64, u64>::new(max_threads, splits))
        }
        StructureKind::StoreCitrus => Arc::new(CitrusStore::<u64, u64>::new(max_threads, splits)),
        StructureKind::StoreList => Arc::new(LazyListStore::<u64, u64>::new(max_threads, splits)),
        other => panic!("{other:?} is not a sharded store kind"),
    }
}

/// Refreshes the sampled gauges of an obs-instrumented store and returns
/// the registry's [`obs::MetricsSnapshot`] — handed out by
/// [`make_obs_store_structure`], which otherwise erases the concrete
/// store type behind [`DynSet`].
pub type ObsSampler = Box<dyn Fn() -> obs::MetricsSnapshot + Send + Sync>;

/// A snapshot source safe to hand to a background
/// [`obs::TimeseriesSampler`]: it is pinned to a dedicated reserved
/// thread slot, so its gauge refreshes never race a live worker's
/// thread id.
pub type ObsSnapshotSource = Box<dyn Fn() -> obs::MetricsSnapshot + Send + 'static>;

/// The pieces of an obs-instrumented store the scenario bins drive,
/// with the concrete backend erased behind [`DynSet`].
pub struct ObsStoreParts {
    /// The type-erased structure the workload runs against.
    pub set: Arc<DynSet>,
    /// Refreshes the store's gauges and snapshots the registry (tid 0 —
    /// call from the coordinating thread, after or between runs).
    pub sampler: ObsSampler,
    /// The store's flight recorder (present whenever the registry is
    /// live; scenario bins dump it behind `--trace`).
    pub trace: Option<Arc<obs::TraceRecorder>>,
    /// Builds a snapshot source for a background
    /// [`obs::TimeseriesSampler`] pinned to the given **reserved**
    /// thread slot — same contract as
    /// [`store::BundledStore::spawn_recycler`]: the caller sizes the
    /// store with an extra `max_threads` slot and guarantees no worker
    /// uses that tid while the sampler runs.
    pub timeseries_source: Box<dyn Fn(usize) -> ObsSnapshotSource>,
}

/// [`make_store_structure`] with observability: the store is built with
/// [`store::BundledStore::with_obs`] so every layer records into
/// instruments registered in `registry` (and into a flight recorder).
/// Panics for non-store kinds.
pub fn make_obs_store_structure(
    kind: StructureKind,
    max_threads: usize,
    shards: usize,
    key_range: u64,
    registry: &obs::MetricsRegistry,
) -> ObsStoreParts {
    fn erase<S>(store: Arc<store::BundledStore<u64, u64, S>>) -> ObsStoreParts
    where
        S: store::ShardBackend<u64, u64> + Send + Sync + 'static,
    {
        let sampler = Arc::clone(&store);
        let trace = store.obs_trace().cloned();
        let ts_store = Arc::clone(&store);
        ObsStoreParts {
            set: store,
            sampler: Box::new(move || sampler.obs_snapshot(0).expect("store built with obs")),
            trace,
            timeseries_source: Box::new(move |tid| {
                let store = Arc::clone(&ts_store);
                Box::new(move || store.obs_snapshot(tid).expect("store built with obs"))
            }),
        }
    }
    let splits = uniform_splits(shards, key_range);
    match kind {
        StructureKind::StoreSkipList => erase(Arc::new(SkipListStore::<u64, u64>::with_obs(
            max_threads,
            ReclaimMode::Reclaim,
            splits,
            registry,
        ))),
        StructureKind::StoreCitrus => erase(Arc::new(CitrusStore::<u64, u64>::with_obs(
            max_threads,
            ReclaimMode::Reclaim,
            splits,
            registry,
        ))),
        StructureKind::StoreList => erase(Arc::new(LazyListStore::<u64, u64>::with_obs(
            max_threads,
            ReclaimMode::Reclaim,
            splits,
            registry,
        ))),
        other => panic!("{other:?} is not a sharded store kind"),
    }
}

/// Construct a *bundled* structure with a relaxed global timestamp
/// (Appendix A): the clock is only advanced every `t`-th update per thread.
/// Panics for non-bundled kinds.
pub fn make_relaxed_structure(kind: StructureKind, max_threads: usize, t: u64) -> Arc<DynSet> {
    match kind {
        StructureKind::SkipListBundle => {
            Arc::new(BundledSkipList::<u64, u64>::with_relaxation(max_threads, t))
        }
        StructureKind::CitrusBundle => Arc::new(BundledCitrusTree::<u64, u64>::with_relaxation(
            max_threads,
            t,
        )),
        StructureKind::ListBundle => {
            Arc::new(BundledLazyList::<u64, u64>::with_relaxation(max_threads, t))
        }
        other => panic!("relaxation only applies to bundled structures, not {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_operates() {
        for kind in ALL_KINDS {
            let s = make_structure(kind, 2);
            assert!(s.insert(0, 10, 100), "{kind:?}");
            assert!(s.contains(1, &10), "{kind:?}");
            let mut out = Vec::new();
            assert_eq!(s.range_query(0, &0, &20, &mut out), 1, "{kind:?}");
            assert_eq!(out, vec![(10, 100)]);
            assert!(s.remove(1, &10), "{kind:?}");
            assert!(s.is_empty(0), "{kind:?}");
        }
    }

    #[test]
    fn names_and_counterparts_are_consistent() {
        for kind in ALL_KINDS {
            assert!(!kind.name().is_empty());
            let counter = kind.unsafe_counterpart();
            assert!(!counter.is_bundled());
            assert_eq!(counter.unsafe_counterpart(), counter);
        }
        assert_eq!(StructureKind::ListBundle.default_key_range(), 10_000);
        assert_eq!(StructureKind::SkipListBundle.default_key_range(), 100_000);
    }

    #[test]
    fn store_kinds_construct_with_custom_sharding() {
        for kind in [
            StructureKind::StoreSkipList,
            StructureKind::StoreCitrus,
            StructureKind::StoreList,
        ] {
            assert!(kind.is_store() && kind.is_bundled(), "{kind:?}");
            assert!(!kind.unsafe_counterpart().is_store());
            for shards in [1, 3] {
                let s = make_store_structure(kind, 2, shards, 1_000);
                for k in (0..1_000u64).step_by(100) {
                    assert!(s.insert(0, k, k), "{kind:?}/{shards}");
                }
                let mut out = Vec::new();
                assert_eq!(
                    s.range_query(1, &0, &1_000, &mut out),
                    10,
                    "{kind:?}/{shards}"
                );
                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
            }
        }
        assert!(!StructureKind::SkipListBundle.is_store());
    }

    #[test]
    fn relaxed_structures_construct_for_bundled_kinds() {
        for kind in [
            StructureKind::SkipListBundle,
            StructureKind::CitrusBundle,
            StructureKind::ListBundle,
        ] {
            let s = make_relaxed_structure(kind, 1, 10);
            for k in 0..50u64 {
                s.insert(0, k, k);
            }
            assert_eq!(s.len(0), 50);
        }
    }
}
