//! The measurement loop: prefill, spawn workers, run the mix, report.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bundle::api::RangeQuerySet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::RunConfig;

/// Result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Updates / contains / range queries individually.
    pub updates: u64,
    /// Completed contains operations.
    pub contains: u64,
    /// Completed range queries.
    pub range_queries: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl Throughput {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Prefill the structure with half of the keys in the key range, as the
/// paper does before every experiment ("the data structure is first
/// initialized with half of the keys in the key range").
pub fn prefill<S>(structure: &S, key_range: u64)
where
    S: RangeQuerySet<u64, u64> + ?Sized,
{
    let mut rng = SmallRng::seed_from_u64(0xb0_0b1e5);
    let mut inserted = 0u64;
    let target = key_range / 2;
    while inserted < target {
        let k = rng.gen_range(0..key_range);
        if structure.insert(0, k, k) {
            inserted += 1;
        }
    }
}

/// Run the given workload mix against `structure` and return the measured
/// throughput. Thread `i` uses registered thread id `i`; the structure must
/// therefore have been created with `max_threads >= cfg.threads`.
pub fn run_workload<S>(structure: &Arc<S>, cfg: &RunConfig) -> Throughput
where
    S: RangeQuerySet<u64, u64> + Send + Sync + 'static + ?Sized,
{
    if cfg.prefill {
        prefill(structure.as_ref(), cfg.key_range);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let updates = Arc::new(AtomicU64::new(0));
    let contains = Arc::new(AtomicU64::new(0));
    let rqs = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::with_capacity(cfg.threads);
    for tid in 0..cfg.threads {
        let structure = Arc::clone(structure);
        let stop = Arc::clone(&stop);
        let updates = Arc::clone(&updates);
        let contains = Arc::clone(&contains);
        let rqs = Arc::clone(&rqs);
        let cfg = *cfg;
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0x5eed ^ (tid as u64 + 1).wrapping_mul(0x9e37));
            let mut out = Vec::with_capacity(cfg.rq_size as usize + 8);
            let mut local_u = 0u64;
            let mut local_c = 0u64;
            let mut local_r = 0u64;
            let mut insert_next = true;
            while !stop.load(Ordering::Relaxed) {
                // A small batch between stop-flag checks keeps the check off
                // the hot path without delaying shutdown noticeably.
                for _ in 0..64 {
                    let op = rng.gen_range(0..100u32);
                    let key = rng.gen_range(0..cfg.key_range);
                    if op < cfg.mix.update_pct {
                        // Alternate inserts and removes (the paper splits
                        // updates evenly to keep the size stable).
                        if insert_next {
                            structure.insert(tid, key, key);
                        } else {
                            structure.remove(tid, &key);
                        }
                        insert_next = !insert_next;
                        local_u += 1;
                    } else if op < cfg.mix.update_pct + cfg.mix.contains_pct {
                        let _ = structure.contains(tid, &key);
                        local_c += 1;
                    } else {
                        let high = key.saturating_add(cfg.rq_size.saturating_sub(1));
                        structure.range_query(tid, &key, &high, &mut out);
                        local_r += 1;
                    }
                }
            }
            updates.fetch_add(local_u, Ordering::Relaxed);
            contains.fetch_add(local_c, Ordering::Relaxed);
            rqs.fetch_add(local_r, Ordering::Relaxed);
        }));
    }

    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(cfg.duration_ms));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    let elapsed = start.elapsed();
    let u = updates.load(Ordering::Relaxed);
    let c = contains.load(Ordering::Relaxed);
    let r = rqs.load(Ordering::Relaxed);
    Throughput {
        total_ops: u + c + r,
        updates: u,
        contains: c,
        range_queries: r,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadMix;
    use crate::registry::{make_structure, StructureKind};

    #[test]
    fn prefill_reaches_half_of_key_range() {
        let s = make_structure(StructureKind::SkipListBundle, 1);
        prefill(s.as_ref(), 1000);
        assert_eq!(s.len(0), 500);
    }

    #[test]
    fn run_workload_executes_all_operation_classes() {
        let s = make_structure(StructureKind::ListBundle, 2);
        let cfg = RunConfig {
            threads: 2,
            duration_ms: 50,
            key_range: 256,
            rq_size: 16,
            mix: WorkloadMix::new(40, 30, 30),
            prefill: true,
        };
        let t = run_workload(&s, &cfg);
        assert!(t.total_ops > 0);
        assert!(t.updates > 0);
        assert!(t.contains > 0);
        assert!(t.range_queries > 0);
        assert!(t.mops() > 0.0);
        assert_eq!(t.total_ops, t.updates + t.contains + t.range_queries);
    }

    #[test]
    fn pure_range_query_mix_never_updates() {
        let s = make_structure(StructureKind::CitrusBundle, 1);
        let cfg = RunConfig {
            threads: 1,
            duration_ms: 30,
            key_range: 128,
            rq_size: 8,
            mix: WorkloadMix::new(0, 0, 100),
            prefill: false,
        };
        // Prefill up front so the measured set size is the baseline.
        prefill(s.as_ref(), cfg.key_range);
        let before = s.len(0);
        let t = run_workload(&s, &cfg);
        assert_eq!(t.updates, 0);
        assert_eq!(before, s.len(0), "pure RQ workload must not change the set");
    }
}
