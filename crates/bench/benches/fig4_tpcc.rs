//! Figure 4: TPC-C index-operation throughput with bundled vs Unsafe
//! indexes (skip list and Citrus tree).

use std::time::Duration;

use bench::bench_threads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbsim::{run_tpcc, DynIndex, TpccConfig};
use workloads::StructureKind;

fn fig4_tpcc(c: &mut Criterion) {
    let threads = bench_threads();
    let cfg = TpccConfig {
        warehouses: 2,
        customers_per_district: 50,
        items: 200,
        initial_orders_per_district: 50,
    };
    let mut group = c.benchmark_group("fig4_tpcc");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for kind in [
        StructureKind::SkipListBundle,
        StructureKind::SkipListUnsafe,
        StructureKind::CitrusBundle,
        StructureKind::CitrusUnsafe,
    ] {
        group.bench_with_input(BenchmarkId::new(kind.name(), threads), &kind, |b, &kind| {
            b.iter(|| {
                let factory = move |t: usize| -> DynIndex { workloads::make_structure(kind, t) };
                run_tpcc(cfg, &factory, threads, 25).index_ops
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig4_tpcc);
criterion_main!(benches);
