//! §8.1 "Linked Lists": bundled lazy list vs Unsafe lazy list on the
//! Figure 2 mixes (the paper reports relative throughput in prose).

use std::time::Duration;

use bench::{bench_threads, prefilled, run_window};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::{StructureKind, WorkloadMix};

fn list_relative(c: &mut Criterion) {
    let threads = bench_threads();
    let mut group = c.benchmark_group("list_relative");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for mix in [WorkloadMix::new(10, 80, 10), WorkloadMix::new(90, 0, 10)] {
        for kind in [StructureKind::ListBundle, StructureKind::ListUnsafe] {
            let s = prefilled(kind, threads);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), mix.label()),
                &mix,
                |b, &mix| b.iter(|| run_window(&s, threads, mix, 50)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, list_relative);
criterion_main!(benches);
