//! Figure 3: 50−0−50 workload at increasing range query sizes, skip list
//! and Citrus tree, bundled vs Unsafe.

use std::time::Duration;

use bench::{bench_threads, prefilled, run_window};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::{StructureKind, WorkloadMix};

fn fig3_rqsize(c: &mut Criterion) {
    let threads = bench_threads();
    let mut group = c.benchmark_group("fig3_rqsize");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for kind in [
        StructureKind::SkipListBundle,
        StructureKind::SkipListUnsafe,
        StructureKind::CitrusBundle,
        StructureKind::CitrusUnsafe,
    ] {
        let s = prefilled(kind, threads);
        for rq_size in [1u64, 50, 500] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), rq_size),
                &rq_size,
                |b, &rq| b.iter(|| run_window(&s, threads, WorkloadMix::HALF_UPDATES_HALF_RQ, rq)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3_rqsize);
criterion_main!(benches);
