//! Sharded store: mixed-workload throughput by shard count, with the
//! unsharded bundled skip list as the reference point.

use std::time::Duration;

use bench::{bench_threads, run_window, BENCH_KEY_RANGE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::registry::DynSet;
use workloads::{make_store_structure, make_structure, StructureKind, WorkloadMix};

fn prefilled_store(shards: usize, threads: usize) -> std::sync::Arc<DynSet> {
    let s = make_store_structure(
        StructureKind::StoreSkipList,
        threads + 1,
        shards,
        BENCH_KEY_RANGE,
    );
    workloads::driver::prefill(s.as_ref(), BENCH_KEY_RANGE);
    s
}

fn store_shards(c: &mut Criterion) {
    let threads = bench_threads();
    let mix = WorkloadMix::new(50, 40, 10);
    let mut group = c.benchmark_group("store_shards");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));

    // Reference: the raw bundled skip list without the store layer.
    let baseline = {
        let s = make_structure(StructureKind::SkipListBundle, threads + 1);
        workloads::driver::prefill(s.as_ref(), BENCH_KEY_RANGE);
        s
    };
    group.bench_with_input(
        BenchmarkId::new("unsharded", "baseline"),
        &mix,
        |b, &mix| b.iter(|| run_window(&baseline, threads, mix, 50)),
    );

    for shards in [1usize, 2, 4, 8] {
        let s = prefilled_store(shards, threads);
        group.bench_with_input(BenchmarkId::new("store", shards), &mix, |b, &mix| {
            b.iter(|| run_window(&s, threads, mix, 50))
        });
    }
    group.finish();
}

criterion_group!(benches, store_shards);
criterion_main!(benches);
