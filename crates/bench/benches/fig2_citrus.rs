//! Figure 2 (f–j): Citrus tree throughput under the five U−C−RQ mixes.

use std::time::Duration;

use bench::{bench_threads, prefilled, run_window};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::{StructureKind, WorkloadMix};

fn fig2_citrus(c: &mut Criterion) {
    let threads = bench_threads();
    let mut group = c.benchmark_group("fig2_citrus");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for mix in WorkloadMix::FIGURE2 {
        for kind in [StructureKind::CitrusBundle, StructureKind::CitrusUnsafe] {
            let s = prefilled(kind, threads);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), mix.label()),
                &mix,
                |b, &mix| b.iter(|| run_window(&s, threads, mix, 50)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig2_citrus);
criterion_main!(benches);
