//! Figure 5 (Appendix A): relaxed timestamping thresholds on the bundled
//! skip list under a 50−0−50 workload.

use std::time::Duration;

use bench::{bench_threads, run_window, BENCH_KEY_RANGE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::registry::make_relaxed_structure;
use workloads::{StructureKind, WorkloadMix};

fn fig5_relaxation(c: &mut Criterion) {
    let threads = bench_threads();
    let mut group = c.benchmark_group("fig5_relaxation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for t in [1u64, 5, 50, 0] {
        let label = if t == 0 {
            "inf".to_string()
        } else {
            t.to_string()
        };
        let s = make_relaxed_structure(StructureKind::SkipListBundle, threads + 1, t);
        workloads::driver::prefill(s.as_ref(), BENCH_KEY_RANGE);
        group.bench_with_input(BenchmarkId::new("threshold", label), &t, |b, _| {
            b.iter(|| run_window(&s, threads, WorkloadMix::HALF_UPDATES_HALF_RQ, 50))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5_relaxation);
criterion_main!(benches);
