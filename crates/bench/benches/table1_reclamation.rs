//! Table 1 (Appendix B): cost of enabling memory reclamation (EBR nodes +
//! background bundle recycling) on the bundled skip list.

use std::sync::Arc;
use std::time::Duration;

use bench::{bench_threads, run_window, BENCH_KEY_RANGE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebr::ReclaimMode;
use skiplist::BundledSkipList;
use workloads::registry::DynSet;
use workloads::WorkloadMix;

fn table1_reclamation(c: &mut Criterion) {
    let threads = bench_threads();
    let mix = WorkloadMix::new(50, 40, 10);
    let mut group = c.benchmark_group("table1_reclamation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));

    // Leaky: the paper's default configuration.
    {
        let s = Arc::new(BundledSkipList::<u64, u64>::with_mode(
            threads + 2,
            ReclaimMode::Leaky,
        ));
        let s: Arc<DynSet> = s;
        workloads::driver::prefill(s.as_ref(), BENCH_KEY_RANGE);
        group.bench_function(BenchmarkId::new("leaky", "none"), |b| {
            b.iter(|| run_window(&s, threads, mix, 50))
        });
    }
    // Reclaiming with a background recycler at different delays.
    for delay_ms in [0u64, 10] {
        let s = Arc::new(BundledSkipList::<u64, u64>::with_mode(
            threads + 2,
            ReclaimMode::Reclaim,
        ));
        let recycler = s.spawn_recycler(threads + 1, Duration::from_millis(delay_ms));
        let dyn_s: Arc<DynSet> = s;
        workloads::driver::prefill(dyn_s.as_ref(), BENCH_KEY_RANGE);
        group.bench_function(
            BenchmarkId::new("reclaim", format!("d={delay_ms}ms")),
            |b| b.iter(|| run_window(&dyn_s, threads, mix, 50)),
        );
        drop(recycler);
    }
    group.finish();
}

criterion_group!(benches, table1_reclamation);
criterion_main!(benches);
