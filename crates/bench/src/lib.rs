//! Shared helpers for the per-figure Criterion benches.
//!
//! Each bench regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index). The benches use deliberately small
//! durations and key ranges so `cargo bench` completes on a laptop-class
//! machine; set `BUNDLE_THREADS` / `BUNDLE_DURATION_MS` and re-run the
//! `workloads` binaries for fuller sweeps.

use std::sync::Arc;

use workloads::registry::DynSet;
use workloads::{make_structure, run_workload, RunConfig, StructureKind, WorkloadMix};

/// Key range used by the benches (scaled down from the paper's 100k so that
/// per-iteration prefill stays cheap).
pub const BENCH_KEY_RANGE: u64 = 10_000;
/// Per-iteration measurement window in milliseconds.
pub const BENCH_WINDOW_MS: u64 = 25;

/// Build and prefill a structure once, for reuse across bench iterations.
pub fn prefilled(kind: StructureKind, threads: usize) -> Arc<DynSet> {
    let s = make_structure(kind, threads + 1);
    workloads::driver::prefill(s.as_ref(), BENCH_KEY_RANGE);
    s
}

/// Run one short mixed-workload window against an already prefilled
/// structure and return the operation count (so Criterion measures
/// wall-clock per fixed-size window).
pub fn run_window(s: &Arc<DynSet>, threads: usize, mix: WorkloadMix, rq_size: u64) -> u64 {
    let cfg = RunConfig {
        threads,
        duration_ms: BENCH_WINDOW_MS,
        key_range: BENCH_KEY_RANGE,
        rq_size,
        mix,
        prefill: false,
    };
    run_workload(s, &cfg).total_ops
}

/// The default bench thread count (kept tiny: the reference machine for
/// this reproduction has a single core).
pub fn bench_threads() -> usize {
    std::env::var("BUNDLE_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}
