//! Citrus-style unbalanced binary search tree implementations (§6).
//!
//! The base algorithm follows Arbel & Attiya's Citrus tree: an internal
//! (unbalanced) BST with wait-free traversals, per-node locks for updates,
//! logical deletion flags, and an RCU-style *copy* of the successor when a
//! node with two children is removed (so traversals never observe a
//! half-moved key). In this reproduction the RCU read-side protection is
//! provided by the same epoch-based reclamation (`ebr` crate) every other
//! structure uses.
//!
//! * [`BundledCitrusTree`] — every child link is a bundled reference; range
//!   queries perform a depth-first traversal of the snapshot subtree using
//!   only bundle dereferences (§6).
//! * [`UnsafeCitrusTree`] — the `Unsafe` baseline: same primitive
//!   operations, non-linearizable DFS range scan.

mod bundled;
mod unsafe_rq;

pub use bundled::{BundledCitrusTree, ShardCursor, ShardTxn};
pub use unsafe_rq::UnsafeCitrusTree;

/// Child direction: left.
pub(crate) const LEFT: usize = 0;
/// Child direction: right.
pub(crate) const RIGHT: usize = 1;
