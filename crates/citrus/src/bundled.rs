//! The bundled Citrus-style binary search tree (§6).

use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use bundle::api::{ConcurrentSet, RangeQuerySet};
use bundle::{
    linearize_update, Bundle, Conflict, CursorStats, GlobalTimestamp, PrepareCursor, Recycler,
    RqContext, RqTracker, StagedOutcomes, TwoPhaseState, TxnValidateError,
};
use ebr::{Collector, Guard, ReclaimMode};

use crate::{LEFT, RIGHT};

/// Pending bundle updates of one operation: `(bundle, new link value)`.
type BundleUpdates<'a, K, V> = Vec<(&'a Bundle<Node<K, V>>, *mut Node<K, V>)>;

struct Node<K, V> {
    key: K,
    val: Option<V>,
    lock: Mutex<()>,
    marked: AtomicBool,
    child: [AtomicPtr<Node<K, V>>; 2],
    /// One bundled reference per child link (§6: "replacing each child link
    /// of the search tree with a bundled reference").
    bundle: [Bundle<Node<K, V>>; 2],
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            child: [
                AtomicPtr::new(ptr::null_mut()),
                AtomicPtr::new(ptr::null_mut()),
            ],
            bundle: [Bundle::new(), Bundle::new()],
        }))
    }
}

/// One ancestor on a cursor's retained spine: a node on the root path
/// plus the open key interval of the subtree slot it occupies (`None` =
/// unbounded). Any key strictly inside the interval has a search path
/// running through this node.
struct SpineEntry<K, V> {
    node: *mut Node<K, V>,
    low: Option<K>,
    high: Option<K>,
}

/// A located position: `pred.child[dir]` is the slot holding `curr`
/// (null = key absent), `low`/`high` the slot's open key interval, and
/// `resumed` whether the search resumed from a non-root spine ancestor.
struct Located<K, V> {
    pred: *mut Node<K, V>,
    dir: usize,
    curr: *mut Node<K, V>,
    low: Option<K>,
    high: Option<K>,
    resumed: bool,
}

/// RAII token of one in-flight gated search (see
/// [`BundledCitrusTree::enter_search`]): drop makes the gate even again
/// (search finished). The release store pairs with the waiter's acquire
/// loop so everything the search did happens-before the waiter's unlink.
struct SearchGate<'a>(&'a AtomicU64);

impl Drop for SearchGate<'_> {
    fn drop(&mut self) {
        self.0.store(
            self.0.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Release,
        );
    }
}

/// Unbalanced internal BST (Citrus-style) with bundled child references and
/// linearizable range queries.
///
/// The root is a sentinel whose key is never compared: the entire tree hangs
/// off its left child, which plays the role of Citrus' infinite-key root.
pub struct BundledCitrusTree<K, V> {
    root: *mut Node<K, V>,
    /// Possibly shared with other structures (see [`RqContext`]); a tree
    /// built through [`Self::new`] owns a private clock, matching the paper.
    clock: Arc<GlobalTimestamp>,
    tracker: Arc<RqTracker>,
    collector: Collector,
    /// Per-thread **search gates** (seqlock-style announcements: odd =
    /// a newest-pointer search is in flight, even = idle), standing in
    /// for the RCU read-side critical sections of the original Citrus.
    /// Every [`Self::search`] / [`Self::search_spined`] descent runs
    /// inside its thread's gate; a two-children remove calls
    /// [`Self::wait_for_searchers`] — one grace period — before the
    /// relocation's `sp.child` unlink, so no search that started on the
    /// old path can observe the successor's slot emptied mid-descent
    /// and miss the (still logically present) relocated key.
    searchers: Box<[CachePadded<AtomicU64>]>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for BundledCitrusTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BundledCitrusTree<K, V> {}

impl<K, V> BundledCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a tree supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a tree with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        Self::with_context(max_threads, mode, &RqContext::new(max_threads))
    }

    /// Create a tree ordering its updates through a possibly *shared*
    /// linearization context.
    ///
    /// Structures built from clones of the same [`RqContext`] totally order
    /// their updates on one clock, so a caller that fixes a snapshot
    /// timestamp once can traverse all of them atomically with
    /// [`Self::range_query_at`] — the basis of the sharded store's
    /// cross-shard linearizable range queries.
    pub fn with_context(max_threads: usize, mode: ReclaimMode, ctx: &RqContext) -> Self {
        let root = Node::new(K::default(), None);
        unsafe {
            // The sentinel's left link starts empty at timestamp 0.
            (*root).bundle[LEFT].init(ptr::null_mut(), 0);
            (*root).bundle[RIGHT].init(ptr::null_mut(), 0);
        }
        BundledCitrusTree {
            root,
            clock: Arc::clone(ctx.clock()),
            tracker: Arc::clone(ctx.tracker()),
            collector: Collector::new(max_threads, mode),
            searchers: (0..max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Tree whose global timestamp only advances every `t`-th update per
    /// thread (Appendix A relaxation; `t = 0` means never).
    pub fn with_relaxation(max_threads: usize, t: u64) -> Self {
        Self::with_context(
            max_threads,
            ReclaimMode::Reclaim,
            &RqContext::with_threshold(max_threads, t),
        )
    }

    /// The structure's epoch collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The structure's global timestamp (diagnostics).
    pub fn clock(&self) -> &GlobalTimestamp {
        &self.clock
    }

    /// A handle to the linearization context this tree uses (shared with
    /// every other structure built from the same context).
    pub fn context(&self) -> RqContext {
        RqContext::from_parts(Arc::clone(&self.clock), Arc::clone(&self.tracker))
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    /// Enter `tid`'s search gate (odd = in flight). The `SeqCst` fence
    /// pairs with the one in [`Self::wait_for_searchers`]: by the
    /// store-buffering theorem, either the waiter observes this gate odd
    /// (and waits the search out), or this search's subsequent pointer
    /// loads observe everything the waiter published before its fence —
    /// in particular the relocation's `pred.child` link, so the search
    /// finds the relocated key at its new node and the pending unlink
    /// cannot make it miss.
    #[inline]
    fn enter_search(&self, tid: usize) -> SearchGate<'_> {
        let slot = &**self
            .searchers
            .get(tid)
            .expect("tid out of range for this tree");
        slot.store(
            slot.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
        fence(Ordering::SeqCst);
        SearchGate(slot)
    }

    /// One grace period over the search gates: returns only when every
    /// *other* thread's search that was in flight at the call has
    /// finished (its gate value changed — the search exited, whether or
    /// not a new one started; a later search is safe, see
    /// [`Self::enter_search`]). Searches are wait-free and take no
    /// locks, so this terminates even though the caller holds node
    /// locks — which is exactly why the gates exist instead of waiting
    /// on the EBR epoch (pins are held across blocking lock
    /// acquisitions and for whole snapshot lifetimes; waiting on them
    /// under locks would deadlock).
    fn wait_for_searchers(&self, self_tid: usize) {
        fence(Ordering::SeqCst);
        for (tid, slot) in self.searchers.iter().enumerate() {
            if tid == self_tid {
                continue;
            }
            let seen = slot.load(Ordering::Acquire);
            if seen & 1 == 1 {
                while slot.load(Ordering::Acquire) == seen {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Wait-free search: returns `(pred, dir, curr)` where `curr` is the
    /// node holding `key` (or null) and `pred.child[dir]` was the link
    /// followed to reach it. The sentinel root's key is never compared.
    /// (Allocation-free fast path for the primitive operations; cursors
    /// use [`Self::search_spined`], which additionally maintains the
    /// resume spine.)
    ///
    /// The whole descent runs inside `tid`'s search gate — the RCU
    /// read-side critical section a relocation's grace period waits out
    /// (see [`Self::wait_for_searchers`]).
    fn search(&self, tid: usize, key: &K) -> (*mut Node<K, V>, usize, *mut Node<K, V>) {
        let _gate = self.enter_search(tid);
        let mut pred = self.root;
        let mut dir = LEFT;
        let mut curr = unsafe { &*pred }.child[LEFT].load(Ordering::Acquire);
        while !curr.is_null() {
            let c = unsafe { &*curr };
            if c.key == *key {
                break;
            }
            dir = if *key < c.key { LEFT } else { RIGHT };
            pred = curr;
            curr = c.child[dir].load(Ordering::Acquire);
        }
        (pred, dir, curr)
    }

    /// [`Self::search`] resuming from (and maintaining) an ancestor
    /// `spine`: the root path of the last located position, each entry
    /// carrying the open key interval of the subtree slot it occupies.
    ///
    /// Ancestors that cannot lie on `key`'s search path any more — the
    /// key falls outside their interval, they hold the key themselves, or
    /// they were unlinked (marked) — are popped; the descent resumes from
    /// the deepest survivor (the sentinel root in the worst case, which
    /// is a plain root descent) and every node descended *through* is
    /// pushed, so the spine always ends at the returned predecessor. A
    /// spine entry that goes stale after its unmarked check can only
    /// yield a stale position (an unlinked node's child pointers are not
    /// cleared), which the caller's under-lock validation catches.
    fn search_spined(
        &self,
        tid: usize,
        key: &K,
        spine: &mut Vec<SpineEntry<K, V>>,
    ) -> Located<K, V> {
        // Like Self::search, the descent (spine validation included) is
        // one gated read-side critical section.
        let _gate = self.enter_search(tid);
        // Validate the spine root-downwards and keep the usable prefix:
        // stop at the first entry that is off `key`'s path (interval
        // miss), holds the key itself (resume from its parent), or is
        // marked. A marked ancestor poisons everything *below* it — the
        // two-children remove relocates its successor's key upward past
        // descendants that stay linked and unmarked, so a deeper resume
        // point could silently miss the relocated key even though it
        // looks healthy on its own. (Intervals themselves are immutable:
        // the tree never rotates, a node keeps its slot until removed.)
        let mut keep = 0usize;
        for e in spine.iter() {
            if e.node != self.root {
                let n = unsafe { &*e.node };
                if n.marked.load(Ordering::Acquire) || n.key == *key {
                    break;
                }
                let inside = e.low.is_none_or(|lo| lo < *key) && e.high.is_none_or(|hi| *key < hi);
                if !inside {
                    break;
                }
            }
            keep += 1;
        }
        spine.truncate(keep);
        let resumed = spine.last().is_some_and(|t| t.node != self.root);
        if spine.is_empty() {
            spine.push(SpineEntry {
                node: self.root,
                low: None,
                high: None,
            });
        }
        let top = spine.last().expect("spine holds at least the root");
        let mut pred = top.node;
        let (mut low, mut high) = (top.low, top.high);
        let mut dir = if pred == self.root || *key < unsafe { &*pred }.key {
            LEFT
        } else {
            RIGHT
        };
        if pred != self.root {
            let pk = unsafe { &*pred }.key;
            if dir == LEFT {
                high = Some(pk);
            } else {
                low = Some(pk);
            }
        }
        let mut curr = unsafe { &*pred }.child[dir].load(Ordering::Acquire);
        while !curr.is_null() {
            let c = unsafe { &*curr };
            if c.key == *key {
                break;
            }
            let ndir = if *key < c.key { LEFT } else { RIGHT };
            // `curr` becomes the new predecessor: it joins the spine with
            // the interval of the slot it occupies.
            spine.push(SpineEntry {
                node: curr,
                low,
                high,
            });
            if ndir == LEFT {
                high = Some(c.key);
            } else {
                low = Some(c.key);
            }
            pred = curr;
            dir = ndir;
            curr = c.child[ndir].load(Ordering::Acquire);
        }
        Located {
            pred,
            dir,
            curr,
            low,
            high,
            resumed,
        }
    }

    /// Total number of bundle entries over all reachable nodes (diagnostic).
    pub fn bundle_entries(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            n += node.bundle[LEFT].len() + node.bundle[RIGHT].len();
            stack.push(node.child[LEFT].load(Ordering::Acquire));
            stack.push(node.child[RIGHT].load(Ordering::Acquire));
        }
        n
    }

    /// One cleanup pass pruning stale bundle entries (Appendix B).
    pub fn cleanup_bundles(&self, tid: usize) -> usize {
        let guard = self.pin(tid);
        let oldest = self.tracker.oldest_active(self.clock.read());
        let mut reclaimed = 0;
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            reclaimed += node.bundle[LEFT].reclaim_up_to(oldest, &guard);
            reclaimed += node.bundle[RIGHT].reclaim_up_to(oldest, &guard);
            stack.push(node.child[LEFT].load(Ordering::Acquire));
            stack.push(node.child[RIGHT].load(Ordering::Acquire));
        }
        self.collector.try_advance();
        reclaimed
    }

    /// Spawn a background recycler running [`Self::cleanup_bundles`] every
    /// `delay` on thread slot `tid`.
    pub fn spawn_recycler(self: &std::sync::Arc<Self>, tid: usize, delay: Duration) -> Recycler
    where
        K: 'static,
        V: 'static,
    {
        let tree = std::sync::Arc::clone(self);
        Recycler::spawn(delay, move || {
            tree.cleanup_bundles(tid);
        })
    }

    /// One optimistic attempt to collect the snapshot at `ts`: optimistic
    /// descent over the newest pointers to the subtree containing the
    /// range, then a depth-first traversal strictly over bundles.
    ///
    /// `None` means a node created after the snapshot was reached and the
    /// caller must retry. The caller holds the EBR guard. Results are in
    /// DFS order; the caller sorts.
    fn try_collect_at(&self, ts: u64, low: &K, high: &K, out: &mut Vec<(K, V)>) -> Option<usize> {
        out.clear();
        // Phase 1 (GetFirstNodeInRange): optimistic descent using the
        // newest pointers to the last node *outside* the range — its child
        // in direction `dir` roots the subtree containing every key of the
        // range.
        let mut pred = self.root;
        let mut dir = LEFT;
        let mut curr = unsafe { &*pred }.child[LEFT].load(Ordering::Acquire);
        while !curr.is_null() {
            let c = unsafe { &*curr };
            if c.key < *low {
                pred = curr;
                dir = RIGHT;
                curr = c.child[RIGHT].load(Ordering::Acquire);
            } else if c.key > *high {
                pred = curr;
                dir = LEFT;
                curr = c.child[LEFT].load(Ordering::Acquire);
            } else {
                break;
            }
        }

        // Phase 2: enter the snapshot through the predecessor's bundle and
        // run a depth-first traversal strictly over bundles.
        let entry = unsafe { &*pred }.bundle[dir].dereference(ts)?;
        self.dfs_collect_at(entry, ts, low, high, out, None)
    }

    /// Bundle-only DFS from `entry` at snapshot `ts`, pruning by key.
    /// `None` if any dereference fails (only possible when `entry` itself
    /// was reached optimistically). When `nodes` is supplied, the address
    /// of every collected node is recorded alongside (in the same DFS
    /// order as `out`; the caller sorts both).
    fn dfs_collect_at(
        &self,
        entry: *mut Node<K, V>,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut nodes: Option<&mut Vec<(K, usize)>>,
    ) -> Option<usize> {
        let mut stack: Vec<*mut Node<K, V>> = vec![entry];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            let k = node.key;
            let follow = |d: usize, stack: &mut Vec<*mut Node<K, V>>| -> bool {
                match node.bundle[d].dereference(ts) {
                    Some(c) => {
                        stack.push(c);
                        true
                    }
                    None => false,
                }
            };
            let ok = if k < *low {
                follow(RIGHT, &mut stack)
            } else if k > *high {
                follow(LEFT, &mut stack)
            } else {
                out.push((k, node.val.clone().expect("data node has a value")));
                if let Some(ns) = nodes.as_deref_mut() {
                    ns.push((k, p as usize));
                }
                follow(LEFT, &mut stack) && follow(RIGHT, &mut stack)
            };
            if !ok {
                return None;
            }
        }
        Some(out.len())
    }

    /// Range query at a *caller-fixed* snapshot timestamp.
    ///
    /// Used by multi-structure callers (the sharded store): read the shared
    /// clock once, announce it in the shared tracker, then call this on
    /// every structure — together the results form one atomic snapshot.
    ///
    /// Contract: `ts` must be announced in this structure's [`RqTracker`]
    /// (e.g. via [`bundle::RqContext::start_rq`]) for the whole call, so
    /// bundle cleanup cannot reclaim entries the traversal needs; `ts` must
    /// also not exceed the shared clock's current value.
    pub fn range_query_at(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
    ) -> usize {
        let _guard = self.pin(tid);
        // Optimistic attempts descend over the newest pointers; the fixed
        // timestamp cannot be refreshed on failure, so fall back to a
        // bundle-only DFS from the sentinel root, which always succeeds
        // (the sentinel's bundles are initialized at timestamp 0 and
        // cleanup keeps every entry the oldest announced snapshot needs).
        for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
            if let Some(n) = self.try_collect_at(ts, low, high, out) {
                out.sort_unstable_by_key(|a| a.0);
                return n;
            }
        }
        out.clear();
        let entry = unsafe { &*self.root }.bundle[LEFT]
            .dereference(ts)
            .expect("root bundle must satisfy an announced snapshot");
        let n = self
            .dfs_collect_at(entry, ts, low, high, out, None)
            .expect("snapshot DFS must stay satisfiable");
        out.sort_unstable_by_key(|a| a.0);
        n
    }

    /// Transactional range read: collect `low..=high` as of snapshot `ts`
    /// exactly like [`Self::range_query_at`], additionally recording each
    /// collected node's address into `nodes` — the per-transaction **read
    /// set** that [`Self::txn_validate`] re-checks and pins at commit.
    /// Both `out` and `nodes` come back sorted by key. Nodes are immutable
    /// once created (even the two-children remove replaces its victim with
    /// a fresh copy), so node identity doubles as value identity.
    ///
    /// Same contract as `range_query_at`, plus: the caller must hold an
    /// EBR pin on this structure from before the read lease until
    /// validation so the recorded addresses stay comparable (no reuse).
    pub fn txn_range_read(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        nodes: &mut Vec<(K, usize)>,
    ) -> usize {
        let _guard = self.pin(tid);
        out.clear();
        nodes.clear();
        let entry = unsafe { &*self.root }.bundle[LEFT]
            .dereference(ts)
            .expect("root bundle must satisfy an announced snapshot");
        let n = self
            .dfs_collect_at(entry, ts, low, high, out, Some(nodes))
            .expect("snapshot DFS must stay satisfiable");
        out.sort_unstable_by_key(|a| a.0);
        nodes.sort_unstable_by_key(|a| a.0);
        n
    }

    /// Transactional point read: [`Self::txn_range_read`] over the
    /// degenerate range `[key, key]`, returning the value.
    pub fn txn_read(&self, tid: usize, ts: u64, key: &K, nodes: &mut Vec<(K, usize)>) -> Option<V> {
        let mut out = Vec::with_capacity(1);
        self.txn_range_read(tid, ts, key, key, &mut out, nodes);
        out.pop().map(|(_, v)| v)
    }
}

/// Optimistic entry attempts a fixed-timestamp range query makes before
/// falling back to the guaranteed bundle-only traversal.
const MAX_OPTIMISTIC_ATTEMPTS: usize = 3;

/// Accumulated two-phase state of one transaction's writes on this tree:
/// the shared lock/pending bookkeeping ([`bundle::TwoPhaseState`]) plus
/// the tree-specific undo log reverting the eager structural changes on
/// abort. See [`BundledCitrusTree::txn_begin`].
pub struct ShardTxn<K, V> {
    core: TwoPhaseState<Node<K, V>>,
    undo: Vec<CitrusUndo<K, V>>,
    /// Per-key pre/post images of the staged writes, consumed by
    /// [`BundledCitrusTree::txn_validate`]. The two-children remove
    /// records *two* keys: the removed key and the relocated successor
    /// (whose node identity changes to the fresh copy).
    staged: StagedOutcomes<K>,
}

enum CitrusUndo<K, V> {
    /// A staged insert stored `node` into `pred.child[dir]` (previously
    /// null).
    Link {
        pred: *mut Node<K, V>,
        dir: usize,
        node: *mut Node<K, V>,
    },
    /// A zero/one-child remove spliced `repl` into `pred.child[dir]`,
    /// marking `curr`.
    Splice {
        pred: *mut Node<K, V>,
        dir: usize,
        curr: *mut Node<K, V>,
    },
    /// A two-children remove replaced `curr` by `new_node` under
    /// `pred.child[dir]`, marked `curr` and `succ`, and (when the
    /// successor was not curr's direct right child) moved `succ` out of
    /// `sp.child[LEFT]`.
    Replace {
        pred: *mut Node<K, V>,
        dir: usize,
        curr: *mut Node<K, V>,
        succ: *mut Node<K, V>,
        new_node: *mut Node<K, V>,
        sp: *mut Node<K, V>,
        sp_moved: bool,
    },
}

impl<K, V> ShardTxn<K, V> {
    /// Number of staged write operations.
    #[must_use]
    pub fn staged_ops(&self) -> usize {
        self.undo.len()
    }

    /// `true` when nothing has been staged or pinned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty() && self.core.is_empty()
    }
}

impl<K, V> BundledCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Begin accumulating two-phase writes for thread `tid`.
    pub fn txn_begin(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::new(),
        }
    }

    /// [`txn_begin`](Self::txn_begin) for a **write-only** pipeline: the
    /// transaction has no read set, so no validate phase will run and the
    /// per-key pre/post images are not recorded (one map insert saved per
    /// staged op — group commits stage hundreds of ops per token, so the
    /// bookkeeping nothing reads is worth skipping). Calling
    /// [`txn_validate`](Self::txn_validate) on such a token is a contract
    /// violation (debug-asserted in `StagedOutcomes`).
    pub fn txn_begin_write_only(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::disabled(),
        }
    }

    /// Acquire `node`'s lock for the transaction unless already held;
    /// `Ok(true)` = newly acquired (see [`TwoPhaseState::lock`]).
    fn txn_lock(&self, txn: &mut ShardTxn<K, V>, node: *mut Node<K, V>) -> Result<bool, Conflict> {
        // Safety: `node` is reachable (caller pins EBR) and a locked node
        // is never retired — every remover must lock its victim first.
        unsafe { txn.core.lock(node, &(*node).lock) }
    }

    /// Open a [`ShardCursor`] over `txn`: the positional batch-staging
    /// surface (see [`bundle::PrepareCursor`]). The cursor retains the
    /// last located position's **ancestor spine** (the root path, with
    /// each node's subtree key interval) and resumes the next search from
    /// the deepest ancestor whose interval still contains the target, so
    /// a key-sorted batch descends once and then walks short subtree
    /// hops.
    pub fn txn_cursor(&self, txn: ShardTxn<K, V>) -> ShardCursor<'_, K, V> {
        // The cursor-lifetime pin keeps every retained spine pointer
        // allocated between seeks (pins are reentrant).
        let guard = self.pin(txn.core.tid());
        ShardCursor {
            tree: self,
            txn,
            _guard: guard,
            spine: Vec::new(),
            stats: CursorStats::default(),
        }
    }

    /// Largest node with `key < bound` (`below = true`) or smallest node
    /// with `key > bound` (`below = false`), over the newest pointers; the
    /// sentinel root when no such node exists. These are the *boundary
    /// pins* of a validated range: a BST insert's parent is always the new
    /// key's in-order predecessor or successor, so locking every in-range
    /// node plus these two boundaries blocks every possible insert into
    /// the range (the empty-tree degenerate case pins the root itself,
    /// which every first insert must lock).
    fn find_boundary(&self, bound: &K, below: bool) -> *mut Node<K, V> {
        let mut best = self.root;
        let mut curr = unsafe { &*self.root }.child[LEFT].load(Ordering::Acquire);
        while !curr.is_null() {
            let c = unsafe { &*curr };
            if below {
                if c.key < *bound {
                    best = curr;
                    curr = c.child[RIGHT].load(Ordering::Acquire);
                } else {
                    curr = c.child[LEFT].load(Ordering::Acquire);
                }
            } else if c.key > *bound {
                best = curr;
                curr = c.child[LEFT].load(Ordering::Acquire);
            } else {
                curr = c.child[RIGHT].load(Ordering::Acquire);
            }
        }
        best
    }

    /// Collect every in-range node over the newest child pointers, sorted
    /// by key. `false` = a marked node was encountered — some removal is
    /// mid-critical-section (or the traversal followed a stale pointer
    /// into one), so the observation is torn and the caller must retry.
    fn collect_range_newest(&self, low: &K, high: &K, acc: &mut Vec<(K, usize)>) -> bool {
        acc.clear();
        let mut stack = vec![unsafe { &*self.root }.child[LEFT].load(Ordering::Acquire)];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let n = unsafe { &*p };
            if n.marked.load(Ordering::Acquire) {
                return false;
            }
            if n.key < *low {
                stack.push(n.child[RIGHT].load(Ordering::Acquire));
            } else if n.key > *high {
                stack.push(n.child[LEFT].load(Ordering::Acquire));
            } else {
                acc.push((n.key, p as usize));
                stack.push(n.child[LEFT].load(Ordering::Acquire));
                stack.push(n.child[RIGHT].load(Ordering::Acquire));
            }
        }
        acc.sort_unstable_by_key(|a| a.0);
        true
    }

    /// Validate one recorded read range of a read-write transaction and
    /// **pin it until commit**. Must run after every staged write of the
    /// transaction on this structure, under the store's shard intent lock.
    ///
    /// The pass walks the live tree, locks every in-range node plus the
    /// range's in-order boundary neighbors ([`Self::find_boundary`]; the
    /// sentinel root when a side has none), re-walks to confirm the locked
    /// picture is stable, and compares the `(key, node)` list against the
    /// recorded read adjusted for the transaction's own staged writes
    /// ([`StagedOutcomes::expected_now`]). Lock contention surfaces as
    /// [`TxnValidateError::Conflict`] (the store rolls back and retries);
    /// a stable mismatch is a foreign commit inside the range since the
    /// leased read timestamp — [`TxnValidateError::Invalidated`].
    ///
    /// Phantom safety: with all in-range nodes and both boundaries locked,
    /// any insert of an in-range key needs its in-order predecessor or
    /// successor — a locked node — as parent, every in-range remove needs
    /// its victim's lock, and every relocation (two-children remove of an
    /// outside key) needs the relocated successor's lock. All block until
    /// the transaction finalizes, so the reads hold at the commit
    /// timestamp.
    pub fn txn_validate(
        &self,
        txn: &mut ShardTxn<K, V>,
        low: &K,
        high: &K,
        recorded: &[(K, usize)],
    ) -> Result<(), TxnValidateError> {
        let expected = txn.staged.expected_now(low, high, recorded)?;
        let _guard = self.pin(txn.core.tid());
        let mut walk: Vec<(K, usize)> = Vec::new();
        let mut verify: Vec<(K, usize)> = Vec::new();
        'attempt: for _ in 0..bundle::MAX_VALIDATE_ATTEMPTS {
            let mut newly = 0usize;
            if !self.collect_range_newest(low, high, &mut walk) {
                continue;
            }
            let pred_lo = self.find_boundary(low, true);
            let succ_hi = self.find_boundary(high, false);
            for node in walk
                .iter()
                .map(|(_, n)| *n as *mut Node<K, V>)
                .chain([pred_lo, succ_hi])
            {
                match self.txn_lock(txn, node) {
                    Ok(true) => newly += 1,
                    Ok(false) => {}
                    Err(Conflict) => {
                        txn.core.unlock_latest(newly);
                        return Err(TxnValidateError::Conflict);
                    }
                }
                if node != self.root && unsafe { &*node }.marked.load(Ordering::Acquire) {
                    txn.core.unlock_latest(newly);
                    continue 'attempt;
                }
            }
            // With the locks held, the picture must be stable: re-walk and
            // re-derive the boundaries. Any difference means an update was
            // mid-flight during the first walk — retry.
            if !self.collect_range_newest(low, high, &mut verify)
                || verify != walk
                || self.find_boundary(low, true) != pred_lo
                || self.find_boundary(high, false) != succ_hi
            {
                txn.core.unlock_latest(newly);
                continue 'attempt;
            }
            if walk != expected {
                txn.core.unlock_latest(newly);
                return Err(TxnValidateError::Invalidated);
            }
            return Ok(());
        }
        Err(TxnValidateError::Conflict)
    }

    /// Commit: publish every staged bundle entry with the transaction's
    /// single timestamp, release the locks, retire removed nodes.
    pub fn txn_finalize(&self, txn: ShardTxn<K, V>, ts: u64) {
        let tid = txn.core.tid();
        let victims = txn.core.finalize(ts);
        let guard = self.pin(tid);
        for v in victims {
            // Safety: unlinked by this transaction under the proper locks;
            // EBR defers the free past concurrent readers.
            unsafe { guard.retire(v) };
        }
    }

    /// Abort: revert the eager structural changes in reverse order, then
    /// neutralize the pending bundle entries, release the locks, and
    /// retire the nodes the transaction created.
    pub fn txn_abort(&self, txn: ShardTxn<K, V>) {
        let ShardTxn { core, mut undo, .. } = txn;
        let tid = core.tid();
        while let Some(op) = undo.pop() {
            match op {
                CitrusUndo::Link { pred, dir, node } => {
                    unsafe { &*node }.marked.store(true, Ordering::SeqCst);
                    unsafe { &*pred }.child[dir].store(ptr::null_mut(), Ordering::SeqCst);
                }
                CitrusUndo::Splice { pred, dir, curr } => {
                    unsafe { &*curr }.marked.store(false, Ordering::SeqCst);
                    unsafe { &*pred }.child[dir].store(curr, Ordering::SeqCst);
                }
                CitrusUndo::Replace {
                    pred,
                    dir,
                    curr,
                    succ,
                    new_node,
                    sp,
                    sp_moved,
                } => {
                    unsafe { &*new_node }.marked.store(true, Ordering::SeqCst);
                    if sp_moved {
                        unsafe { &*sp }.child[LEFT].store(succ, Ordering::SeqCst);
                    }
                    unsafe { &*pred }.child[dir].store(curr, Ordering::SeqCst);
                    unsafe { &*succ }.marked.store(false, Ordering::SeqCst);
                    unsafe { &*curr }.marked.store(false, Ordering::SeqCst);
                }
            }
        }
        // Only after the physical state is fully reverted: release any
        // snapshot readers spinning on our pending entries.
        let created = core.abort();
        let guard = self.pin(tid);
        for n in created {
            // Safety: unlinked above; EBR defers the free.
            unsafe { guard.retire(n) };
        }
    }
}

/// A prepare cursor over one [`ShardTxn`] (see
/// [`BundledCitrusTree::txn_cursor`] and [`bundle::PrepareCursor`]).
///
/// The retained frontier is the last located position's **ancestor
/// spine**: the root path, each entry tagged with the open key interval
/// of its subtree slot. A seek resumes from the deepest spine ancestor
/// whose interval contains the target, reached through an all-unmarked
/// prefix (a marked ancestor poisons everything below it — the
/// two-children remove relocates keys upward). Spine entries staged by
/// the transaction are locked; the rest are unlocked hints whose stale
/// positions are caught by the under-lock validation every prepare
/// performs (the retry falls back to a root descent).
pub struct ShardCursor<'a, K, V> {
    tree: &'a BundledCitrusTree<K, V>,
    txn: ShardTxn<K, V>,
    /// Keeps every retained spine pointer allocated between seeks.
    _guard: Guard<'a>,
    spine: Vec<SpineEntry<K, V>>,
    stats: CursorStats,
}

impl<'a, K, V> ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// One search, resuming from the retained spine when possible.
    fn locate(&mut self, key: &K) -> Located<K, V> {
        let loc = self
            .tree
            .search_spined(self.txn.core.tid(), key, &mut self.spine);
        if loc.resumed {
            self.stats.hinted += 1;
        } else {
            self.stats.descents += 1;
        }
        loc
    }

    /// Stage an insert at the sought position: eager structural link with
    /// the affected bundle entries left *pending* until the transaction's
    /// single commit timestamp. `Ok(false)` = key already present; the
    /// present node stays locked so the no-op outcome still holds at the
    /// commit timestamp.
    pub fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        let tree = self.tree;
        loop {
            let loc = self.locate(&key);
            let (pred, dir, curr) = (loc.pred, loc.dir, loc.curr);
            let txn = &mut self.txn;
            if !curr.is_null() {
                if unsafe { &*curr }.marked.load(Ordering::Acquire) {
                    // Key found but mid-removal; the remover already holds
                    // all its locks (mark and unlink share one critical
                    // section), so the unlink completes without us.
                    std::hint::spin_loop();
                    self.spine.clear();
                    continue;
                }
                // Pin the no-op: hold the present node's lock until
                // commit (a remove must acquire it). If it got marked
                // before we locked it, the remove linearized first —
                // retry and miss it.
                let newly = tree.txn_lock(txn, curr)?;
                if unsafe { &*curr }.marked.load(Ordering::Acquire) {
                    if newly {
                        txn.core.unlock_latest(1);
                        self.spine.clear();
                        continue;
                    }
                    return Err(Conflict);
                }
                txn.staged
                    .record(key, Some(curr as usize), Some(curr as usize));
                self.spine.push(SpineEntry {
                    node: curr,
                    low: loc.low,
                    high: loc.high,
                });
                return Ok(false);
            }
            let newly = tree.txn_lock(txn, pred)?;
            let pred_ref = unsafe { &*pred };
            if pred_ref.marked.load(Ordering::Acquire)
                || !pred_ref.child[dir].load(Ordering::Acquire).is_null()
            {
                if newly {
                    txn.core.unlock_latest(1);
                    self.spine.clear();
                    continue;
                }
                // A node we hold locked cannot be invalidated by others.
                return Err(Conflict);
            }
            let node = Node::new(key, Some(value));
            let node_ref = unsafe { &*node };
            // Hold the new leaf's lock until commit/abort so primitive
            // operations block on it instead of building on state we may
            // roll back.
            let node_guard: MutexGuard<'static, ()> = node_ref.lock.lock();
            txn.core.push_lock(node, node_guard);
            txn.core
                .prepare_bundle(&node_ref.bundle[LEFT], ptr::null_mut());
            txn.core
                .prepare_bundle(&node_ref.bundle[RIGHT], ptr::null_mut());
            txn.core.prepare_bundle(&pred_ref.bundle[dir], node);
            // Eager linearization effect.
            pred_ref.child[dir].store(node, Ordering::SeqCst);
            txn.core.add_created(node);
            txn.staged.record(key, None, Some(node as usize));
            txn.undo.push(CitrusUndo::Link { pred, dir, node });
            self.spine.push(SpineEntry {
                node,
                low: loc.low,
                high: loc.high,
            });
            return Ok(true);
        }
    }

    /// Stage a remove at the sought position. `Ok(false)` = key absent;
    /// the insertion point (the node whose `child[dir]` slot the key
    /// would occupy) stays locked, so the no-op outcome still holds at
    /// the commit timestamp (nobody can insert the key before the
    /// transaction finishes).
    pub fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        let tree = self.tree;
        loop {
            let loc = self.locate(key);
            let (pred, dir, curr) = (loc.pred, loc.dir, loc.curr);
            let txn = &mut self.txn;
            if curr.is_null() {
                // Pin the no-op: hold the insertion parent until commit.
                let newly = tree.txn_lock(txn, pred)?;
                let pred_ref = unsafe { &*pred };
                if pred_ref.marked.load(Ordering::Acquire)
                    || !pred_ref.child[dir].load(Ordering::Acquire).is_null()
                {
                    if newly {
                        txn.core.unlock_latest(1);
                        self.spine.clear();
                        continue;
                    }
                    return Err(Conflict);
                }
                txn.staged.record(*key, None, None);
                return Ok(false);
            }
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            let mut newly = 0usize;
            match tree.txn_lock(txn, pred) {
                Ok(true) => newly += 1,
                Ok(false) => {}
                Err(c) => return Err(c),
            }
            match tree.txn_lock(txn, curr) {
                Ok(true) => newly += 1,
                Ok(false) => {}
                Err(c) => {
                    txn.core.unlock_latest(newly);
                    return Err(c);
                }
            }
            if pred_ref.marked.load(Ordering::Acquire)
                || curr_ref.marked.load(Ordering::Acquire)
                || pred_ref.child[dir].load(Ordering::Acquire) != curr
                || curr_ref.key != *key
            {
                txn.core.unlock_latest(newly);
                if newly == 0 {
                    return Err(Conflict);
                }
                self.spine.clear();
                continue;
            }
            let left = curr_ref.child[LEFT].load(Ordering::Acquire);
            let right = curr_ref.child[RIGHT].load(Ordering::Acquire);

            if left.is_null() || right.is_null() {
                // Cases 1 & 2: splice the only child (or null) into pred.
                let repl = if left.is_null() { right } else { left };
                txn.core.prepare_bundle(&pred_ref.bundle[dir], repl);
                curr_ref.marked.store(true, Ordering::SeqCst);
                pred_ref.child[dir].store(repl, Ordering::SeqCst);
                txn.core.add_victim(curr);
                txn.staged.record(*key, Some(curr as usize), None);
                txn.undo.push(CitrusUndo::Splice { pred, dir, curr });
                return Ok(true);
            }

            // Case 3: two children — replace `curr` by an RCU-style copy
            // of its successor.
            let mut succ_parent = curr;
            let mut succ = right;
            loop {
                let l = unsafe { &*succ }.child[LEFT].load(Ordering::Acquire);
                if l.is_null() {
                    break;
                }
                succ_parent = succ;
                succ = l;
            }
            let succ_ref = unsafe { &*succ };
            let sp_ref = unsafe { &*succ_parent };
            if succ_parent != curr {
                match tree.txn_lock(txn, succ_parent) {
                    Ok(true) => newly += 1,
                    Ok(false) => {}
                    Err(c) => {
                        txn.core.unlock_latest(newly);
                        return Err(c);
                    }
                }
            }
            match tree.txn_lock(txn, succ) {
                Ok(true) => newly += 1,
                Ok(false) => {}
                Err(c) => {
                    txn.core.unlock_latest(newly);
                    return Err(c);
                }
            }
            let succ_still_leftmost = if succ_parent == curr {
                curr_ref.child[RIGHT].load(Ordering::Acquire) == succ
            } else {
                sp_ref.child[LEFT].load(Ordering::Acquire) == succ
            };
            if succ_ref.marked.load(Ordering::Acquire)
                || sp_ref.marked.load(Ordering::Acquire)
                || !succ_ref.child[LEFT].load(Ordering::Acquire).is_null()
                || !succ_still_leftmost
            {
                txn.core.unlock_latest(newly);
                if newly == 0 {
                    return Err(Conflict);
                }
                self.spine.clear();
                continue;
            }
            let succ_right = succ_ref.child[RIGHT].load(Ordering::Acquire);
            let new_node = Node::new(succ_ref.key, succ_ref.val.clone());
            let new_ref = unsafe { &*new_node };
            let new_right = if succ == right { succ_right } else { right };
            let new_guard: MutexGuard<'static, ()> = new_ref.lock.lock();
            txn.core.push_lock(new_node, new_guard);
            new_ref.child[LEFT].store(left, Ordering::Relaxed);
            new_ref.child[RIGHT].store(new_right, Ordering::Relaxed);

            txn.core.prepare_bundle(&new_ref.bundle[LEFT], left);
            txn.core.prepare_bundle(&new_ref.bundle[RIGHT], new_right);
            txn.core.prepare_bundle(&pred_ref.bundle[dir], new_node);
            let sp_moved = succ != right;
            if sp_moved {
                txn.core.prepare_bundle(&sp_ref.bundle[LEFT], succ_right);
            }
            // Eager linearization effect.
            curr_ref.marked.store(true, Ordering::SeqCst);
            succ_ref.marked.store(true, Ordering::SeqCst);
            pred_ref.child[dir].store(new_node, Ordering::SeqCst);
            if sp_moved {
                // Same grace period as the primitive two-children remove
                // (see ConcurrentSet::remove): the successor's old slot
                // stays reachable, so wait out every in-flight gated
                // search before emptying it. The staged locks are held
                // until commit/abort, and searches take no locks, so the
                // wait terminates.
                tree.wait_for_searchers(txn.core.tid());
                sp_ref.child[LEFT].store(succ_right, Ordering::SeqCst);
            }
            txn.core.add_victim(curr);
            txn.core.add_victim(succ);
            txn.core.add_created(new_node);
            txn.staged.record(*key, Some(curr as usize), None);
            // The successor's key keeps its value but moves to the fresh
            // copy; a read that recorded the old node must reconcile.
            txn.staged
                .record(succ_ref.key, Some(succ as usize), Some(new_node as usize));
            txn.undo.push(CitrusUndo::Replace {
                pred,
                dir,
                curr,
                succ,
                new_node,
                sp: succ_parent,
                sp_moved,
            });
            // The copy took curr's slot: it joins the spine so seeks into
            // its subtree (keys beyond the removed one) resume below it.
            self.spine.push(SpineEntry {
                node: new_node,
                low: loc.low,
                high: loc.high,
            });
            return Ok(true);
        }
    }

    /// Read `key`'s current value (newest pointers — the transaction's
    /// own eager writes are visible) through the spine, retaining the
    /// located position as an *unlocked* hint. Takes no locks and stages
    /// nothing.
    pub fn seek_read(&mut self, key: &K) -> Option<V> {
        let loc = self.locate(key);
        if !loc.curr.is_null() {
            let c = unsafe { &*loc.curr };
            if !c.marked.load(Ordering::Acquire) {
                self.spine.push(SpineEntry {
                    node: loc.curr,
                    low: loc.low,
                    high: loc.high,
                });
                return c.val.clone();
            }
        }
        None
    }

    /// Hinted-resume vs root-descent counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CursorStats {
        self.stats
    }

    /// Give the transaction token back (dropping the spine and the
    /// cursor's EBR pin); consume it with
    /// [`BundledCitrusTree::txn_finalize`] or
    /// [`BundledCitrusTree::txn_abort`].
    #[must_use]
    pub fn finish(self) -> ShardTxn<K, V> {
        self.txn
    }
}

impl<'a, K, V> PrepareCursor<K, V> for ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    type Txn = ShardTxn<K, V>;

    fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_put(self, key, value)
    }

    fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_remove(self, key)
    }

    fn seek_read(&mut self, key: &K) -> Option<V> {
        ShardCursor::seek_read(self, key)
    }

    fn stats(&self) -> CursorStats {
        ShardCursor::stats(self)
    }

    fn finish(self) -> ShardTxn<K, V> {
        ShardCursor::finish(self)
    }
}

impl<'a, K, V> std::fmt::Debug for ShardCursor<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCursor")
            .field("spine_depth", &self.spine.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<K, V> ConcurrentSet<K, V> for BundledCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let _guard = self.pin(tid);
        loop {
            let (pred, dir, curr) = self.search(tid, &key);
            if !curr.is_null() {
                let c = unsafe { &*curr };
                if !c.marked.load(Ordering::Acquire) {
                    return false;
                }
                // Key found but node is being removed: retry until the
                // removal's physical unlink makes it unreachable.
                std::hint::spin_loop();
                continue;
            }
            let pred_ref = unsafe { &*pred };
            let _lock = pred_ref.lock.lock();
            // Validate: predecessor still live and the slot still empty.
            if pred_ref.marked.load(Ordering::Acquire)
                || !pred_ref.child[dir].load(Ordering::Acquire).is_null()
            {
                continue;
            }
            let node = Node::new(key, Some(value));
            let node_ref = unsafe { &*node };
            // A new leaf contributes entries for both of its (null)
            // children so that snapshot traversals entering it always find
            // a satisfying entry, plus the predecessor's changed link.
            let bundles = [
                (&node_ref.bundle[LEFT], ptr::null_mut()),
                (&node_ref.bundle[RIGHT], ptr::null_mut()),
                (&pred_ref.bundle[dir], node),
            ];
            linearize_update(&self.clock, tid, &bundles, || {
                pred_ref.child[dir].store(node, Ordering::SeqCst);
            });
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        loop {
            let (pred, dir, curr) = self.search(tid, key);
            if curr.is_null() {
                return false;
            }
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            // Blocking lock only for the first acquisition; everything else
            // is try-locked with full release on failure, so no deadlock.
            let pred_lock = pred_ref.lock.lock();
            let curr_lock = match curr_ref.lock.try_lock() {
                Some(g) => g,
                None => {
                    drop(pred_lock);
                    continue;
                }
            };
            if pred_ref.marked.load(Ordering::Acquire)
                || curr_ref.marked.load(Ordering::Acquire)
                || pred_ref.child[dir].load(Ordering::Acquire) != curr
                || curr_ref.key != *key
            {
                continue;
            }
            let left = curr_ref.child[LEFT].load(Ordering::Acquire);
            let right = curr_ref.child[RIGHT].load(Ordering::Acquire);

            if left.is_null() || right.is_null() {
                // Cases 1 & 2: zero or one child — splice the child (or
                // null) into the predecessor.
                let repl = if left.is_null() { right } else { left };
                let bundles = [(&pred_ref.bundle[dir], repl)];
                linearize_update(&self.clock, tid, &bundles, || {
                    curr_ref.marked.store(true, Ordering::SeqCst);
                    pred_ref.child[dir].store(repl, Ordering::SeqCst);
                });
                drop(curr_lock);
                drop(pred_lock);
                unsafe { guard.retire(curr) };
                return true;
            }

            // Case 3: two children — replace `curr` by an RCU-style copy of
            // its successor (the leftmost node of the right subtree).
            let mut succ_parent = curr;
            let mut succ = right;
            loop {
                let l = unsafe { &*succ }.child[LEFT].load(Ordering::Acquire);
                if l.is_null() {
                    break;
                }
                succ_parent = succ;
                succ = l;
            }
            let succ_ref = unsafe { &*succ };
            let sp_lock = if succ_parent != curr {
                match unsafe { &*succ_parent }.lock.try_lock() {
                    Some(g) => Some(g),
                    None => {
                        drop(curr_lock);
                        drop(pred_lock);
                        continue;
                    }
                }
            } else {
                None
            };
            let succ_lock = match succ_ref.lock.try_lock() {
                Some(g) => g,
                None => {
                    drop(sp_lock);
                    drop(curr_lock);
                    drop(pred_lock);
                    continue;
                }
            };
            let sp_ref = unsafe { &*succ_parent };
            let succ_still_leftmost = if succ_parent == curr {
                curr_ref.child[RIGHT].load(Ordering::Acquire) == succ
            } else {
                sp_ref.child[LEFT].load(Ordering::Acquire) == succ
            };
            if succ_ref.marked.load(Ordering::Acquire)
                || sp_ref.marked.load(Ordering::Acquire)
                || !succ_ref.child[LEFT].load(Ordering::Acquire).is_null()
                || !succ_still_leftmost
            {
                drop(succ_lock);
                drop(sp_lock);
                drop(curr_lock);
                drop(pred_lock);
                continue;
            }
            let succ_right = succ_ref.child[RIGHT].load(Ordering::Acquire);
            // The copy takes curr's position, key/value of the successor,
            // curr's left child, and the appropriate right child.
            let new_node = Node::new(succ_ref.key, succ_ref.val.clone());
            let new_ref = unsafe { &*new_node };
            let new_right = if succ == right { succ_right } else { right };
            new_ref.child[LEFT].store(left, Ordering::Relaxed);
            new_ref.child[RIGHT].store(new_right, Ordering::Relaxed);

            let mut bundles: BundleUpdates<'_, K, V> = vec![
                (&new_ref.bundle[LEFT], left),
                (&new_ref.bundle[RIGHT], new_right),
                (&pred_ref.bundle[dir], new_node),
            ];
            if succ != right {
                // The successor is physically moved out of its old slot.
                bundles.push((&sp_ref.bundle[LEFT], succ_right));
            }
            linearize_update(&self.clock, tid, &bundles, || {
                curr_ref.marked.store(true, Ordering::SeqCst);
                succ_ref.marked.store(true, Ordering::SeqCst);
                pred_ref.child[dir].store(new_node, Ordering::SeqCst);
            });
            if succ != right {
                // The successor moves out of a slot that stays reachable:
                // wait one grace period over the search gates before
                // emptying it, so no search that entered via the old path
                // finds `sp.child[LEFT]` already swung past the (still
                // logically present) relocated key. Deliberately *outside*
                // the linearize closure — snapshots spin on the pending
                // bundle entries while it runs, and the wait must not
                // stall them; the bundle entry for `sp.bundle[LEFT]` is
                // already finalized at the commit timestamp, which is
                // correct because fixed-timestamp traversals read bundles,
                // not this lagging newest pointer (RCU old-path validity).
                // All four locks are still held, so no competing update
                // can touch the slot in between.
                self.wait_for_searchers(tid);
                sp_ref.child[LEFT].store(succ_right, Ordering::SeqCst);
            }
            drop(succ_lock);
            drop(sp_lock);
            drop(curr_lock);
            drop(pred_lock);
            unsafe {
                guard.retire(curr);
                guard.retire(succ);
            }
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let (_, _, curr) = self.search(tid, key);
        // A *found* node answers true even if marked (RCU old-path
        // validity, as in the original Citrus, whose reads never check
        // the mark): a splice victim is only reachable while its remove
        // is mid-critical-section — ordering this read before that
        // remove is linearizable — and a relocation victim's key is
        // still logically present (its copy is already linked, or the
        // relocator is inside the same critical section), so answering
        // absent there would be a linearizability violation, not a
        // race-window nicety.
        !curr.is_null()
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let (_, _, curr) = self.search(tid, key);
        if !curr.is_null() {
            // Marked nodes answer too — see Self::contains. A victim's
            // value is immutable once reachable (relocation copies it,
            // never moves it), so the clone is sound under the EBR pin.
            unsafe { &*curr }.val.clone()
        } else {
            None
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut stack = vec![unsafe { &*self.root }.child[LEFT].load(Ordering::Acquire)];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            n += 1;
            stack.push(node.child[LEFT].load(Ordering::Acquire));
            stack.push(node.child[RIGHT].load(Ordering::Acquire));
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for BundledCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        loop {
            // Linearization point: fix the snapshot timestamp and announce
            // it for the bundle recycler. On a failed optimistic attempt
            // restart with a fresh timestamp.
            let ts = self.tracker.start(tid, &self.clock);
            let collected = self.try_collect_at(ts, low, high, out);
            self.tracker.finish(tid);
            if let Some(n) = collected {
                // The DFS visits keys in tree order, not sorted order.
                out.sort_unstable_by_key(|a| a.0);
                return n;
            }
        }
    }
}

impl<K, V> Drop for BundledCitrusTree<K, V> {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            stack.push(node.child[LEFT].load(Ordering::Relaxed));
            stack.push(node.child[RIGHT].load(Ordering::Relaxed));
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type Tree = BundledCitrusTree<u64, u64>;

    #[test]
    fn empty_tree_behaviour() {
        let t = Tree::new(1);
        assert!(!t.contains(0, &1));
        assert!(!t.remove(0, &1));
        assert_eq!(t.len(0), 0);
        let mut out = Vec::new();
        assert_eq!(t.range_query(0, &0, &100, &mut out), 0);
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let t = Tree::new(1);
        for k in [50u64, 30, 70, 20, 40, 60, 80] {
            assert!(t.insert(0, k, k + 1));
        }
        assert!(!t.insert(0, 40, 0));
        assert_eq!(t.len(0), 7);
        assert!(t.contains(0, &60));
        assert_eq!(t.get(0, &80), Some(81));
        // Remove a leaf, a one-child node and a two-children node.
        assert!(t.remove(0, &20)); // leaf
        assert!(t.remove(0, &30)); // now has a single child (40)
        assert!(t.remove(0, &50)); // root of subtree with two children
        assert!(!t.remove(0, &50));
        assert_eq!(t.len(0), 4);
        for k in [40u64, 60, 70, 80] {
            assert!(t.contains(0, &k), "{k} must survive restructuring");
        }
        for k in [20u64, 30, 50] {
            assert!(!t.contains(0, &k));
        }
    }

    #[test]
    fn range_query_returns_sorted_snapshot() {
        let t = Tree::new(1);
        // Insert in shuffled order to get a non-degenerate tree.
        let mut keys: Vec<u64> = (0..200).map(|i| (i * 37) % 500).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        let mut seed = 7u64;
        for i in (1..shuffled.len()).rev() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            shuffled.swap(i, (seed % (i as u64 + 1)) as usize);
        }
        for &k in &shuffled {
            t.insert(0, k, k);
        }
        let mut out = Vec::new();
        t.range_query(0, &100, &400, &mut out);
        let expected: Vec<(u64, u64)> = keys
            .iter()
            .filter(|&&k| (100..=400).contains(&k))
            .map(|&k| (k, k))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let t = Tree::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 0xabcdefu64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..4000 {
            let k = next() % 512;
            match next() % 3 {
                0 => assert_eq!(t.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(t.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(t.contains(0, &k), model.contains_key(&k)),
            }
        }
        assert_eq!(t.len(0), model.len());
        let mut out = Vec::new();
        t.range_query(0, &64, &256, &mut out);
        let expected: Vec<(u64, u64)> = model.range(64..=256).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_mixed_operations_preserve_integrity() {
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let t = Arc::new(Tree::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                    let mut out = Vec::new();
                    for _ in 0..OPS {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 512;
                        match seed % 4 {
                            0 => {
                                t.insert(tid, k, k);
                            }
                            1 => {
                                t.remove(tid, &k);
                            }
                            2 => {
                                let _ = t.contains(tid, &k);
                            }
                            _ => {
                                let lo = k.saturating_sub(64);
                                t.range_query(tid, &lo, &k, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                                assert!(out.iter().all(|(x, _)| *x >= lo && *x <= k));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        t.range_query(0, &0, &(u64::MAX - 2), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), t.len(0));
    }

    #[test]
    fn range_query_prefix_insertion_has_no_gaps() {
        const MAX: u64 = 2_000;
        let t = Arc::new(Tree::new(2));
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                // Interleave low/high keys so the unbalanced tree does not
                // degenerate into a single path.
                for i in 0..MAX {
                    let k = if i % 2 == 0 { i / 2 } else { MAX - 1 - i / 2 };
                    assert!(t.insert(0, k, i));
                }
            })
        };
        let reader = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..200 {
                    // Snapshot consistency: sorted, deduplicated keys.
                    t.range_query(1, &0, &MAX, &mut out);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(t.len(0), MAX as usize);
    }

    #[test]
    fn successor_move_keeps_snapshot_consistent() {
        // Exercise case 3 of remove repeatedly while a reader scans.
        let t = Arc::new(Tree::new(2));
        for k in 0..200u64 {
            t.insert(0, k, k);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    t.range_query(1, &0, &200, &mut out);
                    assert!(
                        out.windows(2).all(|w| w[0].0 < w[1].0),
                        "duplicate key observed"
                    );
                }
            })
        };
        for _ in 0..20 {
            // Removing interior nodes with two children triggers the copy.
            for k in (10..190u64).step_by(7) {
                t.remove(0, &k);
            }
            for k in (10..190u64).step_by(7) {
                t.insert(0, k, k);
            }
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(t.len(0), 200);
    }

    #[test]
    fn range_query_at_respects_fixed_snapshot() {
        let t = Tree::new(2);
        for k in [50u64, 25, 75, 10, 60, 90, 30] {
            t.insert(0, k, k);
        }
        let ts = t.clock().read();
        t.remove(0, &25);
        t.insert(0, 99, 99);
        let mut out = Vec::new();
        // At the fixed snapshot the removal and late insert are invisible.
        t.range_query_at(1, ts, &0, &100, &mut out);
        assert_eq!(
            out.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 25, 30, 50, 60, 75, 90]
        );
        // A current snapshot sees the new state.
        t.range_query_at(1, t.clock().read(), &0, &100, &mut out);
        assert_eq!(
            out.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 30, 50, 60, 75, 90, 99]
        );
    }

    #[test]
    fn shared_context_spans_structures() {
        let ctx = bundle::RqContext::new(1);
        let a = BundledCitrusTree::<u64, u64>::with_context(1, ReclaimMode::Reclaim, &ctx);
        let b = BundledCitrusTree::<u64, u64>::with_context(1, ReclaimMode::Reclaim, &ctx);
        a.insert(0, 1, 1);
        b.insert(0, 2, 2);
        assert_eq!(ctx.read(), 2, "both trees advance the one clock");
        assert!(a.context().same_as(&b.context()));
    }

    #[test]
    fn txn_commit_is_atomic_under_a_fixed_snapshot() {
        let ctx = bundle::RqContext::new(2);
        let t = BundledCitrusTree::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            t.insert(0, k, k);
        }
        let before = ctx.read();

        let mut cur = t.txn_cursor(t.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(26, 260), Ok(true));
        assert_eq!(cur.seek_prepare_put(27, 270), Ok(true));
        // Removing 25 exercises the two-children (RCU-copy) path; it is a
        // backward seek from 27, so the spine unwinds to an ancestor.
        assert_eq!(cur.seek_prepare_remove(&25), Ok(true));
        assert_eq!(cur.seek_prepare_put(50, 999), Ok(false));
        assert_eq!(cur.seek_prepare_remove(&77), Ok(false));
        assert!(cur.stats().hinted >= 2, "sorted seeks must resume");
        let txn = cur.finish();
        assert_eq!(txn.staged_ops(), 3);
        let ts = ctx.advance(0);
        t.txn_finalize(txn, ts);

        let mut out = Vec::new();
        let announced = ctx.start_rq(1);
        assert!(announced >= ts);
        t.range_query_at(1, before, &0, &100, &mut out);
        let pre: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(pre, vec![10, 25, 30, 50, 60, 75, 90]);
        t.range_query_at(1, ts, &0, &100, &mut out);
        let post: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(post, vec![10, 26, 27, 30, 50, 60, 75, 90]);
        ctx.finish_rq(1);
    }

    #[test]
    fn txn_abort_restores_structure_and_snapshots() {
        let ctx = bundle::RqContext::new(2);
        let t = BundledCitrusTree::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            t.insert(0, k, k);
        }
        let clock_before = ctx.read();

        let mut cur = t.txn_cursor(t.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(55, 550), Ok(true));
        // Two-children removal staged and rolled back.
        assert_eq!(cur.seek_prepare_remove(&50), Ok(true));
        // Leaf removal staged and rolled back.
        assert_eq!(cur.seek_prepare_remove(&10), Ok(true));
        assert_eq!(cur.seek_read(&55), Some(550), "cursor reads eager writes");
        assert_eq!(cur.seek_read(&50), None);
        let txn = cur.finish();
        assert!(t.contains(1, &55));
        assert!(!t.contains(1, &50));
        t.txn_abort(txn);

        assert_eq!(ctx.read(), clock_before, "abort never advances the clock");
        assert!(!t.contains(0, &55));
        assert!(t.contains(0, &50));
        assert!(t.contains(0, &10));
        assert_eq!(t.len(0), 7);
        let mut out = Vec::new();
        t.range_query(1, &0, &100, &mut out);
        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 25, 30, 50, 60, 75, 90]);
        t.range_query_at(1, clock_before, &0, &100, &mut out);
        assert_eq!(out.len(), 7);
        assert!(t.insert(0, 55, 551));
        assert!(t.remove(0, &50));
        assert!(t.remove(0, &10));
        assert_eq!(t.len(0), 6);
    }

    #[test]
    fn txn_remove_of_own_staged_insert_nets_out() {
        let t = Tree::new(1);
        t.insert(0, 10, 10);
        let mut cur = t.txn_cursor(t.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(5, 50), Ok(true));
        // Equal-key seek: the staged node's spine entry holds the key
        // itself, so the search resumes from its parent and must still
        // find (and unlink) the staged node.
        assert_eq!(cur.seek_prepare_remove(&5), Ok(true));
        let ts = t.clock().advance(0);
        t.txn_finalize(cur.finish(), ts);
        assert!(!t.contains(0, &5));
        assert_eq!(t.len(0), 1);
        let mut out = Vec::new();
        t.range_query(0, &0, &20, &mut out);
        assert_eq!(out, vec![(10, 10)]);
    }

    #[test]
    fn txn_reads_validate_and_detect_staleness() {
        let ctx = bundle::RqContext::new(2);
        let t = BundledCitrusTree::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [50u64, 25, 75, 10, 30, 60, 90] {
            t.insert(0, k, k * 2);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        t.txn_range_read(1, lease.ts(), &20, &70, &mut out, &mut nodes);
        assert_eq!(out, vec![(25, 50), (30, 60), (50, 100), (60, 120)]);
        assert_eq!(
            nodes.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![25, 30, 50, 60]
        );
        let mut pn = Vec::new();
        assert_eq!(t.txn_read(1, lease.ts(), &30, &mut pn), Some(60));
        assert_eq!(t.txn_read(1, lease.ts(), &31, &mut pn), None);
        drop(lease);

        // Unchanged: validates (and pins); release through abort.
        let mut txn = t.txn_begin(1);
        assert_eq!(t.txn_validate(&mut txn, &20, &70, &nodes), Ok(()));
        t.txn_abort(txn);
        // A foreign remove of a read key invalidates.
        t.remove(0, &30);
        let mut txn = t.txn_begin(1);
        assert_eq!(
            t.txn_validate(&mut txn, &20, &70, &nodes),
            Err(TxnValidateError::Invalidated)
        );
        t.txn_abort(txn);
        // A phantom inserted into a read-empty range invalidates too.
        let lease = ctx.lease_read(1);
        let mut empty_nodes = Vec::new();
        t.txn_range_read(1, lease.ts(), &31, &45, &mut out, &mut empty_nodes);
        assert!(empty_nodes.is_empty());
        drop(lease);
        t.insert(0, 40, 400);
        let mut txn = t.txn_begin(1);
        assert_eq!(
            t.txn_validate(&mut txn, &31, &45, &empty_nodes),
            Err(TxnValidateError::Invalidated)
        );
        t.txn_abort(txn);
    }

    #[test]
    fn txn_validate_reconciles_own_staged_writes_including_relocation() {
        let ctx = bundle::RqContext::new(2);
        let t = BundledCitrusTree::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [50u64, 25, 75, 60, 90, 55] {
            t.insert(0, k, k);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        t.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);

        // Remove key 50 (two children: its successor 55 relocates into a
        // fresh copy) and insert 70 — both inside the validated range. The
        // staged images must reconcile the relocation.
        let mut cur = t.txn_cursor(t.txn_begin(1));
        assert_eq!(cur.seek_prepare_remove(&50), Ok(true));
        assert_eq!(cur.seek_prepare_put(70, 700), Ok(true));
        let mut txn = cur.finish();
        assert_eq!(t.txn_validate(&mut txn, &0, &100, &nodes), Ok(()));
        let ts = ctx.advance(1);
        t.txn_finalize(txn, ts);
        drop(lease);
        let mut scan = Vec::new();
        t.range_query(0, &0, &100, &mut scan);
        assert_eq!(
            scan,
            vec![(25, 25), (55, 55), (60, 60), (70, 700), (75, 75), (90, 90)]
        );
    }

    #[test]
    fn txn_validate_pins_the_empty_tree_against_first_inserts() {
        let ctx = bundle::RqContext::new(2);
        let t = BundledCitrusTree::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        t.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);
        assert!(out.is_empty());
        drop(lease);
        // Empty tree: the boundary pin degenerates to the sentinel root.
        let mut txn = t.txn_begin(1);
        assert_eq!(t.txn_validate(&mut txn, &0, &100, &nodes), Ok(()));
        t.txn_abort(txn);
        t.insert(0, 5, 5);
        let mut txn = t.txn_begin(1);
        assert_eq!(
            t.txn_validate(&mut txn, &0, &100, &nodes),
            Err(TxnValidateError::Invalidated)
        );
        t.txn_abort(txn);
    }

    #[test]
    fn one_op_cursors_accumulate_into_one_token() {
        // A fresh cursor per op (one root descent each — the legacy
        // point-prepare discipline) must stage into the same token with
        // batch-identical outcomes.
        let t = Tree::new(1);
        t.insert(0, 10, 10);
        let mut txn = t.txn_begin(0);
        for (op, expect) in [
            ((Some(50u64), 5u64), true),
            ((Some(99), 10), false),
            ((None, 10), true),
            ((None, 77), false),
        ] {
            let mut cur = t.txn_cursor(txn);
            match op {
                (Some(v), k) => assert_eq!(cur.seek_prepare_put(k, v), Ok(expect)),
                (None, k) => assert_eq!(cur.seek_prepare_remove(&k), Ok(expect)),
            }
            txn = cur.finish();
        }
        assert_eq!(txn.staged_ops(), 2);
        let ts = t.clock().advance(0);
        t.txn_finalize(txn, ts);
        let mut out = Vec::new();
        t.range_query(0, &0, &100, &mut out);
        assert_eq!(out, vec![(5, 50)]);
    }

    #[test]
    fn cursor_sorted_batch_resumes_from_the_spine() {
        // A key-sorted staged batch into one subtree region must be
        // dominated by spine resumes after the first descent.
        let t = Tree::new(1);
        let mut keys: Vec<u64> = (0..512u64).map(|i| (i * 167) % 1024).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        let mut seed = 11u64;
        for i in (1..shuffled.len()).rev() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            shuffled.swap(i, (seed % (i as u64 + 1)) as usize);
        }
        for &k in &shuffled {
            if k % 2 == 1 {
                t.insert(0, k, k);
            }
        }
        let mut cur = t.txn_cursor(t.txn_begin(0));
        let mut staged = 0u64;
        for &k in &keys {
            if k % 2 == 0 {
                assert_eq!(cur.seek_prepare_put(k, k), Ok(true), "key {k}");
                staged += 1;
            }
        }
        let stats = cur.stats();
        assert_eq!(stats.hinted + stats.descents, staged);
        assert!(
            stats.hinted > stats.descents,
            "ascending seeks must mostly ride the spine: {stats:?}"
        );
        let ts = t.clock().advance(0);
        t.txn_finalize(cur.finish(), ts);
        let mut out = Vec::new();
        t.range_query(0, &0, &2_000, &mut out);
        assert_eq!(out.len(), keys.len());
    }

    #[test]
    fn cursor_spine_invalidation_by_foreign_relocation_stays_correct() {
        // A foreign two-children remove relocates a key upward: the
        // cursor's retained spine runs straight through the removed node,
        // so the next seek must unwind past the marked ancestor instead
        // of resuming below it (and must still find the relocated key).
        let t = Tree::new(2);
        for k in [50u64, 25, 75, 60, 90, 55, 65] {
            t.insert(0, k, k);
        }
        let mut cur = t.txn_cursor(t.txn_begin(1));
        // Build a spine down to the leaf region under 50's right subtree.
        assert_eq!(cur.seek_read(&55), Some(55));
        // Foreign remove of 50 (two children): 55 relocates into a fresh
        // copy at 50's old position; the old 55 node — on the cursor's
        // spine — is marked. (The cursor holds no locks yet, so the
        // primitive remove cannot deadlock against it.)
        assert!(t.remove(0, &50));
        // The relocated key must still be found (marked-prefix unwind),
        // not wrongly reported absent from the stale spine.
        assert_eq!(cur.seek_read(&55), Some(55));
        assert_eq!(cur.seek_prepare_put(55, 550), Ok(false), "55 is present");
        assert_eq!(cur.seek_prepare_remove(&50), Ok(false), "50 is gone");
        let ts = t.clock().advance(1);
        t.txn_finalize(cur.finish(), ts);
        let mut out = Vec::new();
        t.range_query(0, &0, &100, &mut out);
        assert_eq!(
            out,
            vec![(25, 25), (55, 55), (60, 60), (65, 65), (75, 75), (90, 90)]
        );
    }

    #[test]
    fn cleanup_prunes_stale_bundle_entries() {
        let t = Tree::new(2);
        for k in 0..64u64 {
            t.insert(0, k * 3 % 64, k);
        }
        for _ in 0..5 {
            for k in 0..64u64 {
                t.remove(0, &k);
                t.insert(0, k, k);
            }
        }
        let before = t.bundle_entries(0);
        let reclaimed = t.cleanup_bundles(1);
        assert!(reclaimed > 0);
        assert_eq!(t.bundle_entries(0), before - reclaimed);
        let mut out = Vec::new();
        t.range_query(0, &0, &63, &mut out);
        assert_eq!(out.len(), 64);
    }

    /// The deterministic shape of the relocation race: removing 50 picks
    /// successor 60 two links deep (succ_parent 75 != curr), so the
    /// remove is an RCU copy + deferred `sp.child` unlink. The relocated
    /// key must stay visible throughout.
    #[test]
    fn two_children_remove_relocates_without_losing_the_successor() {
        let t = Tree::new(1);
        for k in [50u64, 25, 75, 60, 85, 70] {
            assert!(t.insert(0, k, k * 10));
        }
        assert!(t.remove(0, &50));
        for k in [25u64, 60, 70, 75, 85] {
            assert!(t.contains(0, &k), "{k} lost by the relocation");
        }
        assert_eq!(t.get(0, &60), Some(600), "relocated key keeps its value");
        let mut out = Vec::new();
        assert_eq!(t.range_query(0, &0, &100, &mut out), 5);
        assert_eq!(
            out.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![25, 60, 70, 75, 85]
        );
    }

    #[test]
    fn grace_period_waits_out_an_in_flight_search() {
        let t = Arc::new(Tree::new(4));
        let gate = t.enter_search(1);
        let waited = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waiter = {
            let (t, waited) = (Arc::clone(&t), Arc::clone(&waited));
            std::thread::spawn(move || {
                t.wait_for_searchers(0);
                waited.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !waited.load(Ordering::SeqCst),
            "grace period must not elapse while a search is in flight"
        );
        drop(gate);
        waiter.join().unwrap();
        assert!(waited.load(Ordering::SeqCst));
        // And with all gates idle it returns immediately (the caller's
        // own gate is skipped).
        let _own = t.enter_search(2);
        t.wait_for_searchers(2);
    }

    /// Stress the wait-free-search vs relocation race: a writer
    /// repeatedly performs the deterministic two-children remove that
    /// relocates key 60 while readers hammer `contains(60)`. Key 60 is
    /// logically present for the entire odd phase, so any `contains`
    /// call observing the same odd phase before and after must say so —
    /// a miss means a search slipped past the relocation's unlink (the
    /// race the search-gate grace period closes).
    #[test]
    fn relocated_key_never_flickers_under_concurrent_searches() {
        const ROUNDS: u64 = 4000;
        const READERS: usize = 3;
        let t = Arc::new(Tree::new(1 + READERS));
        let phase = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let (t, phase) = (Arc::clone(&t), Arc::clone(&phase));
                std::thread::spawn(move || {
                    let tid = 1 + r;
                    let mut checked = 0u64;
                    loop {
                        let before = phase.load(Ordering::SeqCst);
                        if before == u64::MAX {
                            return checked;
                        }
                        let found = t.contains(tid, &60);
                        let after = phase.load(Ordering::SeqCst);
                        if before == after && before & 1 == 1 {
                            assert!(
                                found,
                                "contains(60) missed the relocated key in phase {before}"
                            );
                            checked += 1;
                        }
                    }
                })
            })
            .collect();
        for round in 0..ROUNDS {
            for k in [50u64, 25, 75, 60, 85, 70] {
                assert!(t.insert(0, k, k));
            }
            phase.store(round * 2 + 1, Ordering::SeqCst);
            // The relocation under test (succ 60, succ_parent 75).
            assert!(t.remove(0, &50));
            for k in [25u64, 75, 85, 70] {
                assert!(t.remove(0, &k));
            }
            assert!(t.contains(0, &60));
            phase.store(round * 2 + 2, Ordering::SeqCst);
            assert!(t.remove(0, &60));
        }
        phase.store(u64::MAX, Ordering::SeqCst);
        let verified: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        // Sanity: the readers actually raced the live phases.
        assert!(verified > 0, "readers never observed a live phase");
    }
}
