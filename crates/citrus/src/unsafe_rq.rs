//! The *Unsafe* Citrus-style BST baseline: same primitive operations as the
//! bundled tree, non-linearizable DFS range scans.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use parking_lot::Mutex;

use bundle::api::{ConcurrentSet, RangeQuerySet};
use ebr::{Collector, Guard, ReclaimMode};

use crate::{LEFT, RIGHT};

struct Node<K, V> {
    key: K,
    val: Option<V>,
    lock: Mutex<()>,
    marked: AtomicBool,
    child: [AtomicPtr<Node<K, V>>; 2],
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            child: [
                AtomicPtr::new(ptr::null_mut()),
                AtomicPtr::new(ptr::null_mut()),
            ],
        }))
    }
}

/// Unbalanced internal BST with per-node locking and non-linearizable range
/// queries (the paper's `Unsafe` reference for the Citrus tree).
pub struct UnsafeCitrusTree<K, V> {
    root: *mut Node<K, V>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for UnsafeCitrusTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for UnsafeCitrusTree<K, V> {}

impl<K, V> UnsafeCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a tree supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a tree with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        UnsafeCitrusTree {
            root: Node::new(K::default(), None),
            collector: Collector::new(max_threads, mode),
        }
    }

    /// The structure's epoch collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    fn search(&self, key: &K) -> (*mut Node<K, V>, usize, *mut Node<K, V>) {
        let mut pred = self.root;
        let mut dir = LEFT;
        let mut curr = unsafe { &*pred }.child[LEFT].load(Ordering::Acquire);
        while !curr.is_null() {
            let c = unsafe { &*curr };
            if c.key == *key {
                break;
            }
            dir = if *key < c.key { LEFT } else { RIGHT };
            pred = curr;
            curr = c.child[dir].load(Ordering::Acquire);
        }
        (pred, dir, curr)
    }
}

impl<K, V> ConcurrentSet<K, V> for UnsafeCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let _guard = self.pin(tid);
        loop {
            let (pred, dir, curr) = self.search(&key);
            if !curr.is_null() {
                let c = unsafe { &*curr };
                if !c.marked.load(Ordering::Acquire) {
                    return false;
                }
                continue;
            }
            let pred_ref = unsafe { &*pred };
            let _lock = pred_ref.lock.lock();
            if pred_ref.marked.load(Ordering::Acquire)
                || !pred_ref.child[dir].load(Ordering::Acquire).is_null()
            {
                continue;
            }
            let node = Node::new(key, Some(value));
            pred_ref.child[dir].store(node, Ordering::Release);
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        loop {
            let (pred, dir, curr) = self.search(key);
            if curr.is_null() {
                return false;
            }
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            let pred_lock = pred_ref.lock.lock();
            let curr_lock = match curr_ref.lock.try_lock() {
                Some(g) => g,
                None => {
                    drop(pred_lock);
                    continue;
                }
            };
            if pred_ref.marked.load(Ordering::Acquire)
                || curr_ref.marked.load(Ordering::Acquire)
                || pred_ref.child[dir].load(Ordering::Acquire) != curr
                || curr_ref.key != *key
            {
                continue;
            }
            let left = curr_ref.child[LEFT].load(Ordering::Acquire);
            let right = curr_ref.child[RIGHT].load(Ordering::Acquire);
            if left.is_null() || right.is_null() {
                let repl = if left.is_null() { right } else { left };
                curr_ref.marked.store(true, Ordering::Release);
                pred_ref.child[dir].store(repl, Ordering::Release);
                drop(curr_lock);
                drop(pred_lock);
                unsafe { guard.retire(curr) };
                return true;
            }
            // Two children: replace by a copy of the successor.
            let mut succ_parent = curr;
            let mut succ = right;
            loop {
                let l = unsafe { &*succ }.child[LEFT].load(Ordering::Acquire);
                if l.is_null() {
                    break;
                }
                succ_parent = succ;
                succ = l;
            }
            let succ_ref = unsafe { &*succ };
            let sp_lock = if succ_parent != curr {
                match unsafe { &*succ_parent }.lock.try_lock() {
                    Some(g) => Some(g),
                    None => {
                        drop(curr_lock);
                        drop(pred_lock);
                        continue;
                    }
                }
            } else {
                None
            };
            let succ_lock = match succ_ref.lock.try_lock() {
                Some(g) => g,
                None => {
                    drop(sp_lock);
                    drop(curr_lock);
                    drop(pred_lock);
                    continue;
                }
            };
            let sp_ref = unsafe { &*succ_parent };
            let succ_still_leftmost = if succ_parent == curr {
                curr_ref.child[RIGHT].load(Ordering::Acquire) == succ
            } else {
                sp_ref.child[LEFT].load(Ordering::Acquire) == succ
            };
            if succ_ref.marked.load(Ordering::Acquire)
                || sp_ref.marked.load(Ordering::Acquire)
                || !succ_ref.child[LEFT].load(Ordering::Acquire).is_null()
                || !succ_still_leftmost
            {
                drop(succ_lock);
                drop(sp_lock);
                drop(curr_lock);
                drop(pred_lock);
                continue;
            }
            let succ_right = succ_ref.child[RIGHT].load(Ordering::Acquire);
            let new_node = Node::new(succ_ref.key, succ_ref.val.clone());
            let new_ref = unsafe { &*new_node };
            let new_right = if succ == right { succ_right } else { right };
            new_ref.child[LEFT].store(left, Ordering::Relaxed);
            new_ref.child[RIGHT].store(new_right, Ordering::Relaxed);
            curr_ref.marked.store(true, Ordering::Release);
            succ_ref.marked.store(true, Ordering::Release);
            pred_ref.child[dir].store(new_node, Ordering::Release);
            if succ != right {
                sp_ref.child[LEFT].store(succ_right, Ordering::Release);
            }
            drop(succ_lock);
            drop(sp_lock);
            drop(curr_lock);
            drop(pred_lock);
            unsafe {
                guard.retire(curr);
                guard.retire(succ);
            }
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let (_, _, curr) = self.search(key);
        !curr.is_null() && !unsafe { &*curr }.marked.load(Ordering::Acquire)
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let (_, _, curr) = self.search(key);
        if !curr.is_null() && !unsafe { &*curr }.marked.load(Ordering::Acquire) {
            unsafe { &*curr }.val.clone()
        } else {
            None
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut stack = vec![unsafe { &*self.root }.child[LEFT].load(Ordering::Acquire)];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            n += 1;
            stack.push(node.child[LEFT].load(Ordering::Acquire));
            stack.push(node.child[RIGHT].load(Ordering::Acquire));
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for UnsafeCitrusTree<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Non-linearizable DFS over the current pointers.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        out.clear();
        let mut stack = vec![unsafe { &*self.root }.child[LEFT].load(Ordering::Acquire)];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            let k = node.key;
            if k < *low {
                stack.push(node.child[RIGHT].load(Ordering::Acquire));
            } else if k > *high {
                stack.push(node.child[LEFT].load(Ordering::Acquire));
            } else {
                if !node.marked.load(Ordering::Acquire) {
                    out.push((k, node.val.clone().expect("data node has a value")));
                }
                stack.push(node.child[LEFT].load(Ordering::Acquire));
                stack.push(node.child[RIGHT].load(Ordering::Acquire));
            }
        }
        out.sort_unstable_by_key(|a| a.0);
        out.len()
    }
}

impl<K, V> Drop for UnsafeCitrusTree<K, V> {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            let node = unsafe { &*p };
            stack.push(node.child[LEFT].load(Ordering::Relaxed));
            stack.push(node.child[RIGHT].load(Ordering::Relaxed));
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type Tree = UnsafeCitrusTree<u64, u64>;

    #[test]
    fn basic_set_semantics() {
        let t = Tree::new(1);
        for k in [5u64, 2, 8, 1, 3, 7, 9] {
            assert!(t.insert(0, k, k));
        }
        assert!(!t.insert(0, 3, 0));
        assert!(t.contains(0, &7));
        assert!(t.remove(0, &5)); // two children
        assert!(t.remove(0, &1)); // leaf
        assert!(!t.contains(0, &5));
        assert_eq!(t.len(0), 5);
        let mut out = Vec::new();
        t.range_query(0, &2, &8, &mut out);
        assert_eq!(
            out.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2, 3, 7, 8]
        );
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let t = Tree::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 2024u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..4000 {
            let k = next() % 512;
            match next() % 3 {
                0 => assert_eq!(t.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(t.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(t.contains(0, &k), model.contains_key(&k)),
            }
        }
        assert_eq!(t.len(0), model.len());
    }

    #[test]
    fn concurrent_updates_preserve_structure() {
        const THREADS: usize = 4;
        let t = Arc::new(Tree::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1).wrapping_mul(0xd1342543de82ef95);
                    for _ in 0..2000 {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 256;
                        if seed.is_multiple_of(2) {
                            t.insert(tid, k, k);
                        } else {
                            t.remove(tid, &k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        t.range_query(0, &0, &(u64::MAX - 2), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), t.len(0));
    }
}
