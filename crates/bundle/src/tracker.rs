//! `activeRqTsArray`: the registry of active range queries used to decide
//! which bundle entries (and nodes) may be reclaimed (Appendix B).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::ts::GlobalTimestamp;

/// Slot value for a thread with no active range query.
pub const RQ_INACTIVE: u64 = u64::MAX;
/// Slot value published while a thread is between reading the global
/// timestamp and announcing it (the same pending trick used for bundles, so
/// the cleanup pass cannot miss a range query that has read `globalTs` but
/// not yet published its snapshot).
pub const RQ_PENDING: u64 = u64::MAX - 1;

/// One cache-padded announcement slot per registered thread.
///
/// A range query brackets its execution with [`RqTracker::start`] /
/// [`RqTracker::finish`]; the cleanup machinery calls
/// [`RqTracker::oldest_active`] to find the oldest snapshot that still needs
/// to be reconstructible.
pub struct RqTracker {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl RqTracker {
    /// Create a tracker for `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        let slots = (0..max_threads.max(1))
            .map(|_| CachePadded::new(AtomicU64::new(RQ_INACTIVE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RqTracker { slots }
    }

    /// Number of announcement slots.
    pub fn max_threads(&self) -> usize {
        self.slots.len()
    }

    /// Begin a range query on thread `tid`: atomically (with respect to the
    /// cleanup scan) read the global timestamp and announce it.
    ///
    /// Returns the snapshot timestamp — the range query's linearization
    /// point.
    ///
    /// One announcement per `tid` at a time: starting a second range query
    /// (or taking a snapshot / read lease, which occupy the slot for their
    /// whole lifetime — see [`crate::RqContext::lease_read`]) on a tid
    /// whose slot is still announced would silently *clobber* the first
    /// announcement, un-pinning bundle entries its snapshot still needs.
    /// Debug builds catch the misuse loudly instead.
    #[inline]
    pub fn start(&self, tid: usize, clock: &GlobalTimestamp) -> u64 {
        let slot = &self.slots[tid];
        debug_assert_eq!(
            slot.load(Ordering::Relaxed),
            RQ_INACTIVE,
            "tid {tid} started a range query while its tracker slot was \
             still announced (an open snapshot/read lease, or a missing \
             finish) — the older snapshot would lose its reclamation pin"
        );
        slot.store(RQ_PENDING, Ordering::SeqCst);
        let ts = clock.read();
        slot.store(ts, Ordering::SeqCst);
        ts
    }

    /// End the range query previously started on `tid`.
    #[inline]
    pub fn finish(&self, tid: usize) {
        self.slots[tid].store(RQ_INACTIVE, Ordering::Release);
    }

    /// Number of slots currently announcing a snapshot (pending
    /// announcements included): how many range queries, snapshots, or
    /// read leases are live right now — the store's observability layer
    /// exports this as its active-range-query gauge.
    pub fn active_announcements(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != RQ_INACTIVE)
            .count()
    }

    /// Snapshot timestamp currently announced by `tid`, if any.
    pub fn announced(&self, tid: usize) -> Option<u64> {
        match self.slots[tid].load(Ordering::Acquire) {
            RQ_INACTIVE => None,
            v => Some(v),
        }
    }

    /// The oldest snapshot any active range query may still need.
    ///
    /// `current` is the present value of the global timestamp; it is
    /// returned when no range query is active (everything older than "now"
    /// but newer than the newest satisfying entry can then be reclaimed).
    ///
    /// A slot found in the pending state is waited on briefly (the owner is
    /// between two adjacent stores); if it stays pending longer than the
    /// bounded spin we conservatively treat it as timestamp 0, which only
    /// delays reclamation, never compromises safety.
    pub fn oldest_active(&self, current: u64) -> u64 {
        let mut oldest = current;
        for slot in self.slots.iter() {
            let mut v = slot.load(Ordering::SeqCst);
            let mut spins = 0;
            while v == RQ_PENDING {
                std::hint::spin_loop();
                spins += 1;
                if spins > 10_000 {
                    // Owner descheduled mid-announcement: be conservative.
                    v = 0;
                    break;
                }
                v = slot.load(Ordering::SeqCst);
            }
            if v != RQ_INACTIVE && v < oldest {
                oldest = v;
            }
        }
        oldest
    }
}

impl std::fmt::Debug for RqTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let active: Vec<(usize, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.load(Ordering::Relaxed) {
                RQ_INACTIVE => None,
                v => Some((i, v)),
            })
            .collect();
        f.debug_struct("RqTracker")
            .field("active", &active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn start_announces_snapshot_and_finish_clears_it() {
        let clock = GlobalTimestamp::new(2);
        let tracker = RqTracker::new(2);
        clock.advance(0);
        clock.advance(0);
        let ts = tracker.start(1, &clock);
        assert_eq!(ts, 2);
        assert_eq!(tracker.announced(1), Some(2));
        assert_eq!(tracker.announced(0), None);
        tracker.finish(1);
        assert_eq!(tracker.announced(1), None);
    }

    #[test]
    fn oldest_active_is_minimum_of_announced_snapshots() {
        let clock = GlobalTimestamp::new(4);
        let tracker = RqTracker::new(4);
        for _ in 0..10 {
            clock.advance(0);
        }
        assert_eq!(tracker.oldest_active(clock.read()), 10);
        let t_a = tracker.start(1, &clock); // 10
        for _ in 0..5 {
            clock.advance(0);
        }
        let t_b = tracker.start(2, &clock); // 15
        assert_eq!(t_a, 10);
        assert_eq!(t_b, 15);
        assert_eq!(tracker.oldest_active(clock.read()), 10);
        tracker.finish(1);
        assert_eq!(tracker.oldest_active(clock.read()), 15);
        tracker.finish(2);
        assert_eq!(tracker.oldest_active(clock.read()), 15);
    }

    #[test]
    fn concurrent_ranges_never_report_future_snapshots() {
        let clock = Arc::new(GlobalTimestamp::new(4));
        let tracker = Arc::new(RqTracker::new(4));
        let updater = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    clock.advance(0);
                }
            })
        };
        let mut readers = Vec::new();
        for tid in 1..4 {
            let clock = Arc::clone(&clock);
            let tracker = Arc::clone(&tracker);
            readers.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let ts = tracker.start(tid, &clock);
                    let oldest = tracker.oldest_active(clock.read());
                    assert!(oldest <= clock.read());
                    assert!(ts <= clock.read());
                    tracker.finish(tid);
                }
            }));
        }
        updater.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
