//! Structure-agnostic core of a two-phase (transactional) update: the
//! bookkeeping every bundled structure's `ShardTxn` shares.
//!
//! A multi-key transaction on one structure accumulates three kinds of
//! state while it prepares: the **node locks** it holds (until commit or
//! abort), the **pending bundle entries** it has installed (all finalized
//! with one commit timestamp, or neutralized on abort), and the nodes it
//! has created or unlinked (retired through EBR by the winning path).
//! That bookkeeping — plus the bounded `try_lock` discipline that keeps
//! transactions deadlock-free against each structure's own lock order,
//! and the merge-on-own-pending rule that prevents self-deadlock when one
//! transaction updates the same link twice — is identical across the lazy
//! list, skip list, and Citrus tree. [`TwoPhaseState`] implements it
//! once; the structure crates layer their traversal, validation, and undo
//! logs on top.

use parking_lot::{Mutex, MutexGuard};

use crate::bundle_impl::{Bundle, PendingEntry};
use crate::linearize::Conflict;

/// `try_lock` attempts a two-phase prepare makes on a contended node lock
/// before declaring [`Conflict`] (the whole transaction then aborts and
/// retries, which is what keeps mixed transactional/primitive traffic
/// deadlock-free: the per-structure lock orders cannot be made globally
/// consistent with key-ordered two-phase locking).
pub const TXN_LOCK_SPINS: usize = 64;

/// Shared two-phase bookkeeping over nodes of type `N`.
///
/// Raw-pointer soundness contract (upheld by the structure crates): every
/// pointer pushed into the state refers to a node that stays allocated
/// while the state holds its lock — a locked node can never be retired,
/// because every remover must acquire its victim's lock first.
pub struct TwoPhaseState<N> {
    tid: usize,
    /// Held node locks in acquisition order. The guards borrow through
    /// raw node pointers, so their lifetime is unconstrained; see the
    /// soundness contract above.
    locks: Vec<(*mut N, MutexGuard<'static, ()>)>,
    /// Pending bundle entries keyed by bundle address, so a second write
    /// to the same link merges instead of self-deadlocking on its own
    /// pending head.
    pendings: Vec<(usize, PendingEntry<N>)>,
    /// Nodes unlinked by staged removes; retired on commit.
    victims: Vec<*mut N>,
    /// Nodes created by staged inserts; retired on abort.
    created: Vec<*mut N>,
}

impl<N> TwoPhaseState<N> {
    /// Empty state for thread `tid`.
    pub fn new(tid: usize) -> Self {
        TwoPhaseState {
            tid,
            locks: Vec::new(),
            pendings: Vec::new(),
            victims: Vec::new(),
            created: Vec::new(),
        }
    }

    /// The dense thread id the transaction runs as.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// `true` if the transaction already holds `node`'s lock.
    #[must_use]
    pub fn holds(&self, node: *mut N) -> bool {
        self.locks.iter().any(|(n, _)| *n == node)
    }

    /// Record a lock acquired out-of-band (e.g. the uncontended `lock()`
    /// of a node the transaction just created).
    pub fn push_lock(&mut self, node: *mut N, guard: MutexGuard<'static, ()>) {
        self.locks.push((node, guard));
    }

    /// Release the `n` most recently acquired locks (failed-validation
    /// rewind; the popped guards unlock on drop).
    pub fn unlock_latest(&mut self, n: usize) {
        for _ in 0..n {
            self.locks.pop();
        }
    }

    /// Acquire `node`'s lock for the transaction unless already held;
    /// `Ok(true)` = newly acquired (and pushed, so an abort releases it).
    /// Bounded `try_lock`: contention surfaces as [`Conflict`] instead of
    /// risking a deadlock cycle with a primitive operation blocked on one
    /// of our locks.
    ///
    /// # Safety
    ///
    /// `mutex` must be the lock embedded in `*node`, and `node` must obey
    /// the state's soundness contract (alive while locked).
    pub unsafe fn lock(&mut self, node: *mut N, mutex: *const Mutex<()>) -> Result<bool, Conflict> {
        if self.holds(node) {
            return Ok(false);
        }
        let mutex: &'static Mutex<()> = &*mutex;
        for _ in 0..TXN_LOCK_SPINS {
            if let Some(guard) = mutex.try_lock() {
                self.locks.push((node, guard));
                return Ok(true);
            }
            std::hint::spin_loop();
        }
        Err(Conflict)
    }

    /// Install (or merge into) the transaction's pending entry on
    /// `bundle`. The caller must hold the lock of the node owning
    /// `bundle`, which guarantees any pending head already present is this
    /// transaction's own (primitive updates only touch a bundle under its
    /// node's lock).
    pub fn prepare_bundle(&mut self, bundle: &Bundle<N>, ptr: *mut N) {
        let addr = bundle as *const _ as usize;
        if let Some((_, pe)) = self.pendings.iter().find(|(a, _)| *a == addr) {
            pe.set_ptr(ptr);
        } else {
            self.pendings.push((addr, bundle.prepare(ptr)));
        }
    }

    /// Record a node unlinked by a staged remove (retire on commit).
    pub fn add_victim(&mut self, node: *mut N) {
        self.victims.push(node);
    }

    /// Record a node created by a staged insert (retire on abort).
    pub fn add_created(&mut self, node: *mut N) {
        self.created.push(node);
    }

    /// `true` when nothing has been staged or locked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty() && self.pendings.is_empty()
    }

    /// Commit half: finalize every pending entry with the transaction's
    /// single timestamp and release the locks. Returns the victims for
    /// the caller to retire under its EBR guard.
    pub fn finalize(self, ts: u64) -> Vec<*mut N> {
        for (_, pe) in self.pendings {
            pe.finalize(ts);
        }
        drop(self.locks);
        self.victims
    }

    /// Abort half: neutralize every pending entry (entries with history
    /// become invisible duplicates, first entries of created nodes become
    /// tombstones) and release the locks. The caller must have reverted
    /// its structural changes *before* calling this — neutralization is
    /// what releases snapshot readers spinning on the pendings, and they
    /// must observe the restored physical state. Returns the created
    /// nodes for the caller to retire under its EBR guard.
    pub fn abort(self) -> Vec<*mut N> {
        for (_, pe) in self.pendings {
            pe.abort();
        }
        drop(self.locks);
        self.created
    }
}

impl<N> std::fmt::Debug for TwoPhaseState<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPhaseState")
            .field("tid", &self.tid)
            .field("locks", &self.locks.len())
            .field("pendings", &self.pendings.len())
            .field("victims", &self.victims.len())
            .field("created", &self.created.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Cell {
        lock: Mutex<()>,
        bundle: Bundle<Cell>,
    }

    #[test]
    fn lock_tracking_and_merge() {
        let a = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let b = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let mut st: TwoPhaseState<Cell> = TwoPhaseState::new(3);
        assert_eq!(st.tid(), 3);
        assert!(st.is_empty());
        unsafe {
            assert_eq!(st.lock(a, &(*a).lock), Ok(true));
            assert_eq!(st.lock(a, &(*a).lock), Ok(false), "re-lock is a no-op");
            // A contended lock conflicts instead of blocking.
            let held = (*b).lock.lock();
            assert_eq!(st.lock(b, &(*b).lock), Err(Conflict));
            drop(held);
            assert_eq!(st.lock(b, &(*b).lock), Ok(true));
        }
        // Same-bundle prepare merges; distinct bundles stack.
        let bundle = unsafe { &(*a).bundle };
        bundle.init(std::ptr::null_mut(), 0);
        st.prepare_bundle(bundle, a);
        st.prepare_bundle(bundle, b);
        assert_eq!(bundle.len(), 2, "merged: init entry + one pending");
        st.unlock_latest(1);
        assert!(!st.holds(b));
        assert!(st.holds(a));
        let victims = st.finalize(7);
        assert!(victims.is_empty());
        assert_eq!(bundle.dereference(7), Some(b), "merged value wins");
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn abort_returns_created_and_neutralizes() {
        let a = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let mut st: TwoPhaseState<Cell> = TwoPhaseState::new(0);
        let bundle = unsafe { &(*a).bundle };
        bundle.init(a, 2);
        st.prepare_bundle(bundle, std::ptr::null_mut());
        st.add_created(a);
        let created = st.abort();
        assert_eq!(created, vec![a]);
        assert_eq!(bundle.dereference(5), Some(a), "abort restored history");
        unsafe { drop(Box::from_raw(a)) };
    }
}
