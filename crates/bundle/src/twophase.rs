//! Structure-agnostic core of a two-phase (transactional) update: the
//! bookkeeping every bundled structure's `ShardTxn` shares.
//!
//! A multi-key transaction on one structure accumulates three kinds of
//! state while it prepares: the **node locks** it holds (until commit or
//! abort), the **pending bundle entries** it has installed (all finalized
//! with one commit timestamp, or neutralized on abort), and the nodes it
//! has created or unlinked (retired through EBR by the winning path).
//! That bookkeeping — plus the bounded `try_lock` discipline that keeps
//! transactions deadlock-free against each structure's own lock order,
//! and the merge-on-own-pending rule that prevents self-deadlock when one
//! transaction updates the same link twice — is identical across the lazy
//! list, skip list, and Citrus tree. [`TwoPhaseState`] implements it
//! once; the structure crates layer their traversal, validation, and undo
//! logs on top.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use parking_lot::{Mutex, MutexGuard};

use crate::bundle_impl::{Bundle, PendingEntry};
use crate::linearize::{Conflict, TxnValidateError};

/// `try_lock` attempts a two-phase prepare makes on a contended node lock
/// before declaring [`Conflict`] (the whole transaction then aborts and
/// retries, which is what keeps mixed transactional/primitive traffic
/// deadlock-free: the per-structure lock orders cannot be made globally
/// consistent with key-ordered two-phase locking).
pub const TXN_LOCK_SPINS: usize = 64;

/// Multiplicative hasher for node/bundle *addresses* (already
/// well-distributed), replacing SipHash in the per-transaction lock and
/// pending maps: those maps are probed once per staged op, on the
/// committer thread that serializes every group, so shaving the hash
/// matters at super-batch sizes.
#[derive(Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0 ^ i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_right(17);
    }
}

type AddrSet = HashSet<usize, BuildHasherDefault<AddrHasher>>;
type AddrMap = HashMap<usize, usize, BuildHasherDefault<AddrHasher>>;

/// Shared two-phase bookkeeping over nodes of type `N`.
///
/// Raw-pointer soundness contract (upheld by the structure crates): every
/// pointer pushed into the state refers to a node that stays allocated
/// while the state holds its lock — a locked node can never be retired,
/// because every remover must acquire its victim's lock first.
pub struct TwoPhaseState<N> {
    tid: usize,
    /// Held node locks in acquisition order. The guards borrow through
    /// raw node pointers, so their lifetime is unconstrained; see the
    /// soundness contract above.
    locks: Vec<(*mut N, MutexGuard<'static, ()>)>,
    /// Addresses of the held locks, for O(1) [`TwoPhaseState::holds`]
    /// checks — a group-commit super-batch stages hundreds of ops into
    /// one state, and every prepare probes lock ownership, so a linear
    /// scan here made batch prepares quadratic.
    lock_set: AddrSet,
    /// Pending bundle entries in installation order, so a second write
    /// to the same link merges instead of self-deadlocking on its own
    /// pending head.
    pendings: Vec<(usize, PendingEntry<N>)>,
    /// Bundle address -> index into `pendings` (O(1) merge lookups; same
    /// quadratic-batch story as `lock_set`).
    pending_idx: AddrMap,
    /// Nodes unlinked by staged removes; retired on commit.
    victims: Vec<*mut N>,
    /// Nodes created by staged inserts; retired on abort.
    created: Vec<*mut N>,
}

impl<N> TwoPhaseState<N> {
    /// Empty state for thread `tid`.
    pub fn new(tid: usize) -> Self {
        TwoPhaseState {
            tid,
            locks: Vec::new(),
            lock_set: AddrSet::default(),
            pendings: Vec::new(),
            pending_idx: AddrMap::default(),
            victims: Vec::new(),
            created: Vec::new(),
        }
    }

    /// The dense thread id the transaction runs as.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// `true` if the transaction already holds `node`'s lock.
    #[must_use]
    pub fn holds(&self, node: *mut N) -> bool {
        self.lock_set.contains(&(node as usize))
    }

    /// Record a lock acquired out-of-band (e.g. the uncontended `lock()`
    /// of a node the transaction just created).
    pub fn push_lock(&mut self, node: *mut N, guard: MutexGuard<'static, ()>) {
        self.lock_set.insert(node as usize);
        self.locks.push((node, guard));
    }

    /// Release the `n` most recently acquired locks (failed-validation
    /// rewind; the popped guards unlock on drop).
    pub fn unlock_latest(&mut self, n: usize) {
        for _ in 0..n {
            if let Some((node, _)) = self.locks.pop() {
                self.lock_set.remove(&(node as usize));
            }
        }
    }

    /// Acquire `node`'s lock for the transaction unless already held;
    /// `Ok(true)` = newly acquired (and pushed, so an abort releases it).
    /// Bounded `try_lock`: contention surfaces as [`Conflict`] instead of
    /// risking a deadlock cycle with a primitive operation blocked on one
    /// of our locks.
    ///
    /// # Safety
    ///
    /// `mutex` must be the lock embedded in `*node`, and `node` must obey
    /// the state's soundness contract (alive while locked).
    pub unsafe fn lock(&mut self, node: *mut N, mutex: *const Mutex<()>) -> Result<bool, Conflict> {
        if self.holds(node) {
            return Ok(false);
        }
        let mutex: &'static Mutex<()> = &*mutex;
        for _ in 0..TXN_LOCK_SPINS {
            if let Some(guard) = mutex.try_lock() {
                self.push_lock(node, guard);
                return Ok(true);
            }
            std::hint::spin_loop();
        }
        Err(Conflict)
    }

    /// Install (or merge into) the transaction's pending entry on
    /// `bundle`. The caller must hold the lock of the node owning
    /// `bundle`, which guarantees any pending head already present is this
    /// transaction's own (primitive updates only touch a bundle under its
    /// node's lock).
    pub fn prepare_bundle(&mut self, bundle: &Bundle<N>, ptr: *mut N) {
        let addr = bundle as *const _ as usize;
        match self.pending_idx.entry(addr) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.pendings[*e.get()].1.set_ptr(ptr);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.pendings.len());
                self.pendings.push((addr, bundle.prepare(ptr)));
            }
        }
    }

    /// Record a node unlinked by a staged remove (retire on commit).
    pub fn add_victim(&mut self, node: *mut N) {
        self.victims.push(node);
    }

    /// Record a node created by a staged insert (retire on abort).
    pub fn add_created(&mut self, node: *mut N) {
        self.created.push(node);
    }

    /// `true` when nothing has been staged or locked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty() && self.pendings.is_empty()
    }

    /// Commit half: finalize every pending entry with the transaction's
    /// single timestamp and release the locks. Returns the victims for
    /// the caller to retire under its EBR guard.
    pub fn finalize(self, ts: u64) -> Vec<*mut N> {
        for (_, pe) in self.pendings {
            pe.finalize(ts);
        }
        drop(self.locks);
        self.victims
    }

    /// Abort half: neutralize every pending entry (entries with history
    /// become invisible duplicates, first entries of created nodes become
    /// tombstones) and release the locks. The caller must have reverted
    /// its structural changes *before* calling this — neutralization is
    /// what releases snapshot readers spinning on the pendings, and they
    /// must observe the restored physical state. Returns the created
    /// nodes for the caller to retire under its EBR guard.
    pub fn abort(self) -> Vec<*mut N> {
        for (_, pe) in self.pendings {
            pe.abort();
        }
        drop(self.locks);
        self.created
    }
}

/// Per-key pre/post images of one transaction's *staged writes* on one
/// structure, recorded by the prepare phase and consumed by the validate
/// phase of a read-write transaction.
///
/// Each entry maps a written key to the node that held it just before the
/// transaction staged anything for it (`pre`, `None` = absent) and the
/// node that holds it in the *current, eagerly modified* structure (`now`,
/// `None` = structurally removed). Node addresses are opaque `usize`s so
/// the bookkeeping is node-type agnostic; the structure crates own the
/// pointers and keep them alive (prepared nodes are locked until commit,
/// and the transaction layer holds an EBR guard across its lifetime).
///
/// Why validation needs this: reads are answered at a leased snapshot
/// timestamp *before* the writes prepare, but the validate pass walks the
/// structure *after* the eager structural changes. `expected_now` bridges
/// the two views — it projects what the walk should find given that the
/// recorded read was current, so any difference is a genuine intervening
/// commit (a stale read), not the transaction tripping over its own
/// writes. Nodes are immutable once created (updates are staged as
/// remove-then-insert), so node identity doubles as value identity.
#[derive(Debug)]
pub struct StagedOutcomes<K> {
    /// `key -> (pre-txn node, current node)`; at most one entry per key
    /// (later stagings of the same key update `now`, keep the first
    /// `pre`). A map rather than a scan-on-record list: a group-commit
    /// super-batch records hundreds of staged keys per shard, and the
    /// prepare path must stay linear in the batch size.
    entries: BTreeMap<K, (Option<usize>, Option<usize>)>,
    /// `false` for write-only pipelines (no read set, no validate phase):
    /// [`StagedOutcomes::record`] becomes a no-op, sparing every staged
    /// op a map insert that nothing will ever read. Group commits and
    /// `multi_put`-style batches run in this mode.
    recording: bool,
}

impl<K: Copy + Ord> Default for StagedOutcomes<K> {
    /// Same as [`StagedOutcomes::new`]: records images.
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Ord> StagedOutcomes<K> {
    /// Empty outcome set that records images (read-write transactions).
    pub fn new() -> Self {
        StagedOutcomes {
            entries: BTreeMap::new(),
            recording: true,
        }
    }

    /// Outcome set for a **write-only** pipeline: nothing will validate,
    /// so nothing is recorded. [`StagedOutcomes::expected_now`] must not
    /// be called on it (debug-asserted).
    pub fn disabled() -> Self {
        StagedOutcomes {
            entries: BTreeMap::new(),
            recording: false,
        }
    }

    /// Record one staged write's images. A second staging of the same key
    /// (e.g. the insert half of an upsert after its remove half) keeps the
    /// original `pre` and replaces `now`. No-op for a
    /// [`StagedOutcomes::disabled`] set.
    pub fn record(&mut self, key: K, pre: Option<usize>, now: Option<usize>) {
        if !self.recording {
            return;
        }
        self.entries
            .entry(key)
            .and_modify(|e| e.1 = now)
            .or_insert((pre, now));
    }

    /// Number of distinct staged keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Project the `(key, node)` list a validate-phase walk of the current
    /// (eagerly modified) structure should find in `low..=high`, given
    /// that `recorded` — the committed content of that range at the
    /// transaction's read timestamp — is still current.
    ///
    /// For every staged key inside the range, the recorded read and the
    /// prepare's `pre` image must agree (both saw the key absent, or both
    /// saw the *same* node); a disagreement means a foreign update
    /// committed between the read and the prepare, so the read set is
    /// stale ([`TxnValidateError::Invalidated`]). Agreeing entries are
    /// substituted by their `now` image.
    pub fn expected_now(
        &self,
        low: &K,
        high: &K,
        recorded: &[(K, usize)],
    ) -> Result<Vec<(K, usize)>, TxnValidateError> {
        debug_assert!(
            self.recording,
            "a write-only (disabled) outcome set recorded nothing to project"
        );
        let mut projected: BTreeMap<K, usize> = recorded.iter().copied().collect();
        for (key, (pre, now)) in self.entries.range(*low..=*high) {
            if projected.get(key).copied() != *pre {
                return Err(TxnValidateError::Invalidated);
            }
            match now {
                Some(n) => {
                    projected.insert(*key, *n);
                }
                None => {
                    projected.remove(key);
                }
            }
        }
        Ok(projected.into_iter().collect())
    }
}

/// Walk attempts a validation pass makes before conceding a conflict
/// (each retry re-traverses after a torn observation, e.g. a node removed
/// between the walk reaching it and locking it).
pub const MAX_VALIDATE_ATTEMPTS: usize = 8;

/// Shared validate-phase walk over a *chain-shaped* level of a structure
/// (the lazy list; the skip list's data layer): re-locate the range's gap
/// predecessor, lock it and every in-range node (bounded `try_lock`
/// through `core`, so contention surfaces as
/// [`TxnValidateError::Conflict`]), re-checking linkage under each lock,
/// and compare the found `(key, node)` list against `expected` (the
/// recorded read projected through the transaction's [`StagedOutcomes`]).
/// Torn observations retry up to [`MAX_VALIDATE_ATTEMPTS`] times; a
/// stable mismatch is a foreign commit inside the range —
/// [`TxnValidateError::Invalidated`]. On success the acquired locks stay
/// in `core` (held until finalize/abort), which is what pins the
/// validated range at the commit timestamp.
///
/// The structure supplies its specifics as closures: `locate` returns
/// `(gap predecessor, first candidate)` for the range's lower bound;
/// `lock` is the structure's transactional node lock (typically
/// [`TwoPhaseState::lock`] on the node's embedded mutex); `pred_valid`
/// re-validates the located pair; `key_of` reads a node's (immutable)
/// key; `step` checks `curr` is validly linked after `prev` under the
/// just-acquired lock and yields `(key, next)` — or `None` for a torn
/// observation.
///
/// Safety contract (upheld by the callers): every pointer produced by
/// `locate`/`step` is reachable while the caller's EBR pin is live, and
/// `lock` upholds [`TwoPhaseState::lock`]'s contract.
#[allow(clippy::too_many_arguments)]
pub fn validate_chain<K, N>(
    core: &mut TwoPhaseState<N>,
    expected: &[(K, usize)],
    high: &K,
    tail: *mut N,
    mut locate: impl FnMut() -> (*mut N, *mut N),
    mut lock: impl FnMut(&mut TwoPhaseState<N>, *mut N) -> Result<bool, Conflict>,
    mut pred_valid: impl FnMut(*mut N, *mut N) -> bool,
    mut key_of: impl FnMut(*mut N) -> K,
    mut step: impl FnMut(*mut N, *mut N) -> Option<(K, *mut N)>,
) -> Result<(), TxnValidateError>
where
    K: Copy + Ord,
{
    'attempt: for _ in 0..MAX_VALIDATE_ATTEMPTS {
        let mut newly = 0usize;
        let (pred, first) = locate();
        match lock(core, pred) {
            Ok(true) => newly += 1,
            Ok(false) => {}
            Err(Conflict) => return Err(TxnValidateError::Conflict),
        }
        if !pred_valid(pred, first) {
            core.unlock_latest(newly);
            if newly == 0 {
                // A node the transaction already holds cannot be
                // invalidated by others; surface the impossible as a
                // conflict instead of spinning.
                return Err(TxnValidateError::Conflict);
            }
            continue;
        }
        let mut actual: Vec<(K, usize)> = Vec::new();
        let mut prev = pred;
        let mut curr = first;
        while curr != tail && key_of(curr) <= *high {
            match lock(core, curr) {
                Ok(true) => newly += 1,
                Ok(false) => {}
                Err(Conflict) => {
                    core.unlock_latest(newly);
                    return Err(TxnValidateError::Conflict);
                }
            }
            // Re-check linkage under the lock: a node that got removed
            // (or whose predecessor link moved) between the walk reaching
            // it and locking it is a torn observation, not a verdict.
            let Some((key, next)) = step(prev, curr) else {
                core.unlock_latest(newly);
                continue 'attempt;
            };
            actual.push((key, curr as usize));
            prev = curr;
            curr = next;
        }
        if actual != expected {
            core.unlock_latest(newly);
            return Err(TxnValidateError::Invalidated);
        }
        return Ok(());
    }
    Err(TxnValidateError::Conflict)
}

impl<N> std::fmt::Debug for TwoPhaseState<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPhaseState")
            .field("tid", &self.tid)
            .field("locks", &self.locks.len())
            .field("pendings", &self.pendings.len())
            .field("victims", &self.victims.len())
            .field("created", &self.created.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Cell {
        lock: Mutex<()>,
        bundle: Bundle<Cell>,
    }

    #[test]
    fn lock_tracking_and_merge() {
        let a = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let b = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let mut st: TwoPhaseState<Cell> = TwoPhaseState::new(3);
        assert_eq!(st.tid(), 3);
        assert!(st.is_empty());
        unsafe {
            assert_eq!(st.lock(a, &(*a).lock), Ok(true));
            assert_eq!(st.lock(a, &(*a).lock), Ok(false), "re-lock is a no-op");
            // A contended lock conflicts instead of blocking.
            let held = (*b).lock.lock();
            assert_eq!(st.lock(b, &(*b).lock), Err(Conflict));
            drop(held);
            assert_eq!(st.lock(b, &(*b).lock), Ok(true));
        }
        // Same-bundle prepare merges; distinct bundles stack.
        let bundle = unsafe { &(*a).bundle };
        bundle.init(std::ptr::null_mut(), 0);
        st.prepare_bundle(bundle, a);
        st.prepare_bundle(bundle, b);
        assert_eq!(bundle.len(), 2, "merged: init entry + one pending");
        st.unlock_latest(1);
        assert!(!st.holds(b));
        assert!(st.holds(a));
        let victims = st.finalize(7);
        assert!(victims.is_empty());
        assert_eq!(bundle.dereference(7), Some(b), "merged value wins");
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn staged_outcomes_project_and_detect_stale_reads() {
        let mut st: StagedOutcomes<u64> = StagedOutcomes::new();
        assert!(st.is_empty());
        // A put of an absent key (created node 100), a remove of node 200
        // at key 20, and an upsert of key 30 (remove node 300, insert 301
        // — two recordings merge into one entry).
        st.record(10, None, Some(100));
        st.record(20, Some(200), None);
        st.record(30, Some(300), None);
        st.record(30, None, Some(301));
        assert_eq!(st.len(), 3);

        // Recorded read agrees with every pre image: the projection swaps
        // in the now images.
        let recorded = vec![(20, 200), (30, 300), (40, 400)];
        let expected = st.expected_now(&0, &50, &recorded).unwrap();
        assert_eq!(expected, vec![(10, 100), (30, 301), (40, 400)]);

        // Staged keys outside the validated range are ignored.
        let narrow = st.expected_now(&35, &50, &[(40, 400)]).unwrap();
        assert_eq!(narrow, vec![(40, 400)]);

        // The read saw a *different* node for key 20 than the prepare
        // removed: a foreign update slipped in between — stale.
        let stale = vec![(20, 999), (30, 300)];
        assert_eq!(
            st.expected_now(&0, &50, &stale),
            Err(TxnValidateError::Invalidated)
        );
        // The read saw key 10 present but the prepare created it: stale.
        assert_eq!(
            st.expected_now(&0, &50, &[(10, 100), (20, 200), (30, 300)]),
            Err(TxnValidateError::Invalidated)
        );
    }

    #[test]
    fn abort_returns_created_and_neutralizes() {
        let a = Box::into_raw(Box::new(Cell {
            lock: Mutex::new(()),
            bundle: Bundle::new(),
        }));
        let mut st: TwoPhaseState<Cell> = TwoPhaseState::new(0);
        let bundle = unsafe { &(*a).bundle };
        bundle.init(a, 2);
        st.prepare_bundle(bundle, std::ptr::null_mut());
        st.add_created(a);
        let created = st.abort();
        assert_eq!(created, vec![a]);
        assert_eq!(bundle.dereference(5), Some(a), "abort restored history");
        unsafe { drop(Box::from_raw(a)) };
    }
}
