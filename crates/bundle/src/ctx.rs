//! A shareable linearization context: one [`GlobalTimestamp`] and one
//! [`RqTracker`] that several bundled structures can use *together*.
//!
//! The paper gives each structure its own `globalTs`; that makes range
//! queries linearizable *per structure*. A store that shards its keyspace
//! across many structures needs more: a range query spanning shards must
//! correspond to a single atomic snapshot of the **whole** store. The
//! classic way to get that — and what [`RqContext`] packages — is to make
//! every shard order its updates through the *same* timestamp and announce
//! range queries in the *same* tracker:
//!
//! * updates on any shard call `advance` on the shared clock, so all
//!   updates across all shards are totally ordered;
//! * a cross-shard range query reads the shared clock **once** and
//!   traverses every shard at that one timestamp — each shard serves the
//!   fragment of the same atomic snapshot;
//! * the shared tracker makes bundle-entry reclamation on every shard
//!   respect the oldest snapshot any cross-shard query still needs.
//!
//! The context is cheap to clone (two `Arc`s) and a structure built from
//! its own private context behaves exactly like the paper's original
//! design, so the single-structure path pays nothing.

use std::sync::Arc;

use crate::tracker::RqTracker;
use crate::ts::GlobalTimestamp;

/// A cloneable handle to a (possibly shared) global timestamp and
/// range-query tracker.
///
/// Two structures built from clones of the same `RqContext` order all of
/// their updates on one clock, which is what makes cross-structure range
/// queries linearizable (see the module docs and the `store` crate).
#[derive(Clone, Debug)]
pub struct RqContext {
    clock: Arc<GlobalTimestamp>,
    tracker: Arc<RqTracker>,
}

impl RqContext {
    /// A linearizable context supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        RqContext {
            clock: Arc::new(GlobalTimestamp::new(max_threads)),
            tracker: Arc::new(RqTracker::new(max_threads)),
        }
    }

    /// A context whose clock only advances every `threshold`-th update per
    /// thread (Appendix A relaxation; `0` means never).
    pub fn with_threshold(max_threads: usize, threshold: u64) -> Self {
        RqContext {
            clock: Arc::new(GlobalTimestamp::with_threshold(max_threads, threshold)),
            tracker: Arc::new(RqTracker::new(max_threads)),
        }
    }

    /// Build a context from already-shared parts.
    pub fn from_parts(clock: Arc<GlobalTimestamp>, tracker: Arc<RqTracker>) -> Self {
        RqContext { clock, tracker }
    }

    /// The shared clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<GlobalTimestamp> {
        &self.clock
    }

    /// The shared range-query tracker.
    #[must_use]
    pub fn tracker(&self) -> &Arc<RqTracker> {
        &self.tracker
    }

    /// Number of registered thread slots (the tracker's bound).
    #[must_use]
    pub fn max_threads(&self) -> usize {
        self.tracker.max_threads()
    }

    /// `true` if `other` shares this context's clock and tracker (i.e.
    /// range queries across structures built from both are linearizable).
    #[must_use]
    pub fn same_as(&self, other: &RqContext) -> bool {
        Arc::ptr_eq(&self.clock, &other.clock) && Arc::ptr_eq(&self.tracker, &other.tracker)
    }

    /// Read the clock without announcing anything (diagnostics).
    #[must_use]
    pub fn read(&self) -> u64 {
        self.clock.read()
    }

    /// Acquire an update timestamp from the shared clock.
    ///
    /// This is the commit step of a cross-structure transaction: after
    /// *every* affected bundle on every structure holds a pending entry
    /// ([`bundle_prepare`]), one `advance` supplies the single timestamp
    /// all of them finalize with — making the whole write batch one atomic
    /// cut with respect to every snapshot fixed through this context.
    ///
    /// [`bundle_prepare`]: crate::Bundle::prepare
    #[inline]
    pub fn advance(&self, tid: usize) -> u64 {
        self.clock.advance(tid)
    }

    /// Total [`RqContext::advance`] calls made on the shared clock so far
    /// (all threads, monotonic). A group-commit front-end advances the
    /// clock once per *batch*, so comparing this counter against the
    /// number of committed operations measures the amortization:
    /// `advance_calls / ops < 1` means several operations shared one
    /// advance. See [`GlobalTimestamp::advance_calls`].
    ///
    /// [`GlobalTimestamp::advance_calls`]: crate::GlobalTimestamp::advance_calls
    #[must_use]
    pub fn advance_calls(&self) -> u64 {
        self.clock.advance_calls()
    }

    /// Begin a range query on `tid`: atomically read the shared clock and
    /// announce the snapshot. Returns the snapshot timestamp — the
    /// linearization point of everything traversed under it.
    #[inline]
    pub fn start_rq(&self, tid: usize) -> u64 {
        self.tracker.start(tid, &self.clock)
    }

    /// End the range query previously started on `tid`.
    #[inline]
    pub fn finish_rq(&self, tid: usize) {
        self.tracker.finish(tid);
    }

    /// The oldest snapshot any active range query (on *any* structure
    /// sharing this context) may still need.
    #[must_use]
    pub fn oldest_active(&self) -> u64 {
        self.tracker.oldest_active(self.clock.read())
    }

    /// Number of snapshots currently announced in the shared tracker —
    /// live range queries, store snapshots, and read leases across every
    /// structure sharing this context (see
    /// [`RqTracker::active_announcements`]).
    #[must_use]
    pub fn active_rqs(&self) -> usize {
        self.tracker.active_announcements()
    }

    /// Lease a read timestamp for `tid`: atomically read the shared clock
    /// and announce the snapshot in the tracker, exactly like
    /// [`RqContext::start_rq`], but held across an *arbitrary number of
    /// reads* instead of one range query. A read-write transaction leases
    /// once at its first read and answers every subsequent read at the
    /// leased timestamp — all of its reads observe one atomic snapshot,
    /// and the announce pins bundle reclamation on every structure sharing
    /// this context until the lease drops (commit or rollback).
    ///
    /// The tracker has one announcement slot per `tid`, so while the lease
    /// is live the owning thread must not start another range query (or a
    /// second lease) on the same `tid`.
    #[must_use]
    pub fn lease_read(&self, tid: usize) -> ReadLease {
        let ts = self.start_rq(tid);
        ReadLease {
            ctx: self.clone(),
            tid,
            ts,
        }
    }
}

/// A leased read timestamp: the snapshot announcement of one read-write
/// transaction (see [`RqContext::lease_read`]). Dropping the lease ends
/// the announcement, releasing bundle reclamation.
#[derive(Debug)]
pub struct ReadLease {
    ctx: RqContext,
    tid: usize,
    ts: u64,
}

impl ReadLease {
    /// The leased snapshot timestamp: the logical time every read of the
    /// owning transaction is answered at.
    #[must_use]
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// The dense thread id the lease is announced on.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }
}

impl Drop for ReadLease {
    fn drop(&mut self) {
        self.ctx.finish_rq(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_clock_and_tracker() {
        let ctx = RqContext::new(4);
        let other = ctx.clone();
        assert!(ctx.same_as(&other));
        assert_eq!(ctx.max_threads(), 4);
        // An update ordered through one handle is visible through the other.
        other.clock().advance(0);
        assert_eq!(ctx.read(), 1);
        // A snapshot announced through one handle pins reclamation for all.
        let ts = ctx.start_rq(1);
        assert_eq!(ts, 1);
        other.clock().advance(0);
        assert_eq!(other.oldest_active(), 1);
        ctx.finish_rq(1);
        assert_eq!(other.oldest_active(), 2);
    }

    #[test]
    fn independent_contexts_are_distinct() {
        let a = RqContext::new(2);
        let b = RqContext::new(2);
        assert!(!a.same_as(&b));
        a.clock().advance(0);
        assert_eq!(a.read(), 1);
        assert_eq!(b.read(), 0);
    }

    #[test]
    fn read_lease_pins_reclamation_until_dropped() {
        let ctx = RqContext::new(2);
        ctx.clock().advance(0);
        ctx.clock().advance(0);
        let lease = ctx.lease_read(1);
        assert_eq!(lease.ts(), 2);
        assert_eq!(lease.tid(), 1);
        // Updates committed after the lease do not move the pin.
        ctx.clock().advance(0);
        assert_eq!(ctx.oldest_active(), 2, "lease pins its snapshot");
        drop(lease);
        assert_eq!(ctx.oldest_active(), 3, "dropped lease releases the pin");
    }

    #[test]
    fn from_parts_and_threshold() {
        let relaxed = RqContext::with_threshold(1, 0);
        relaxed.clock().advance(0);
        assert_eq!(relaxed.read(), 0, "T=inf never increments");
        let rebuilt =
            RqContext::from_parts(Arc::clone(relaxed.clock()), Arc::clone(relaxed.tracker()));
        assert!(rebuilt.same_as(&relaxed));
    }
}
