//! Common traits implemented by every ordered-set implementation in this
//! workspace (bundled structures, the Unsafe baselines, and the EBR-RQ and
//! RLU competitors), so that the benchmark harness, the DBx1000-style
//! database and the examples can drive any of them uniformly.
//!
//! Threads are identified by a dense index `tid` in `0..max_threads`, the
//! same index used to register with the structure's EBR collector and
//! range-query tracker (this mirrors the thread-id discipline of the
//! original C++ benchmark framework the paper builds on).

/// A concurrent ordered map/set supporting the paper's *primitive*
/// operations: `insert`, `remove`, and `contains`.
pub trait ConcurrentSet<K, V>: Send + Sync {
    /// Insert `key -> value`; returns `false` if the key was already
    /// present (in which case the structure is unchanged).
    fn insert(&self, tid: usize, key: K, value: V) -> bool;

    /// Remove `key`; returns `false` if it was not present.
    fn remove(&self, tid: usize, key: &K) -> bool;

    /// Wait-free membership test.
    #[must_use]
    fn contains(&self, tid: usize, key: &K) -> bool;

    /// Lookup returning a copy of the value.
    #[must_use]
    fn get(&self, tid: usize, key: &K) -> Option<V>;

    /// Number of elements, counted by a full (non-linearizable) traversal.
    /// Intended for tests and initialization sanity checks, not hot paths.
    #[must_use]
    fn len(&self, tid: usize) -> usize;

    /// `true` when [`ConcurrentSet::len`] would be 0.
    #[must_use]
    fn is_empty(&self, tid: usize) -> bool {
        self.len(tid) == 0
    }
}

/// A [`ConcurrentSet`] that also supports range queries.
///
/// Whether `range_query` returns a linearizable snapshot is a property of
/// the implementation: the bundled, EBR-RQ and RLU variants are
/// linearizable; the `Unsafe` baselines are not (they are the paper's
/// performance reference line).
pub trait RangeQuerySet<K, V>: ConcurrentSet<K, V> {
    /// Collect every `(key, value)` with `low <= key <= high` into `out`
    /// (cleared first), returning the number of elements. Results are in
    /// ascending key order.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize;

    /// Convenience wrapper allocating a fresh result vector.
    #[must_use]
    fn range_query_vec(&self, tid: usize, low: &K, high: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.range_query(tid, low, high, &mut out);
        out
    }
}

/// Blanket impls so `Arc<T>` (how the harness shares structures between
/// worker threads) can be used wherever the traits are expected.
impl<K, V, T: ConcurrentSet<K, V> + ?Sized> ConcurrentSet<K, V> for std::sync::Arc<T> {
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        (**self).insert(tid, key, value)
    }
    fn remove(&self, tid: usize, key: &K) -> bool {
        (**self).remove(tid, key)
    }
    fn contains(&self, tid: usize, key: &K) -> bool {
        (**self).contains(tid, key)
    }
    fn get(&self, tid: usize, key: &K) -> Option<V> {
        (**self).get(tid, key)
    }
    fn len(&self, tid: usize) -> usize {
        (**self).len(tid)
    }
}

impl<K, V, T: RangeQuerySet<K, V> + ?Sized> RangeQuerySet<K, V> for std::sync::Arc<T> {
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        (**self).range_query(tid, low, high, out)
    }
    // Forwarded explicitly: the trait's default would allocate and traverse
    // through the blanket impl, bypassing any specialized `range_query_vec`
    // the underlying structure provides.
    fn range_query_vec(&self, tid: usize, low: &K, high: &K) -> Vec<(K, V)> {
        (**self).range_query_vec(tid, low, high)
    }
}
