//! # Bundled references
//!
//! This crate is the core contribution of the PPoPP 2021 paper *"Bundled
//! References: An Abstraction for Highly-Concurrent Linearizable Range
//! Queries"* (Nelson, Hassan, Palmieri), reproduced in Rust.
//!
//! A **bundle** augments a link between two data structure nodes with the
//! history of the values that link has held, each entry tagged with the
//! (logical) time at which the link was installed. Update operations
//! totally order themselves through a [`GlobalTimestamp`]; a range query
//! reads the timestamp once at its outset (its linearization point) and then
//! traverses the structure strictly through bundle entries whose timestamp
//! does not exceed that snapshot — visiting exactly the nodes that belong to
//! its atomic snapshot and nothing else.
//!
//! The building blocks exported here are data-structure agnostic and are the
//! pieces named in the paper's pseudocode:
//!
//! * [`GlobalTimestamp`] — `globalTs`, including the relaxed (threshold-`T`)
//!   variant evaluated in Appendix A,
//! * [`Bundle`] / `BundleEntry` — Listing 1, with the *pending entry*
//!   protocol of Algorithm 2 and the `DereferenceBundle` operation,
//! * [`linearize_update`] — Algorithm 1 (`LinearizeUpdateOperation`),
//! * [`RqTracker`] — the `activeRqTsArray` used for bundle-entry
//!   reclamation (Appendix B),
//! * [`Recycler`] — a background cleanup thread with a configurable delay,
//!   matching the Table 1 experiment,
//! * [`RqContext`] — a cloneable clock + tracker handle that several
//!   structures can *share*, extending the paper's per-structure guarantee
//!   to linearizable range queries **across** structures (the basis of the
//!   sharded `store` crate),
//! * [`api`] — the `ConcurrentSet` / `RangeQuerySet` traits implemented by
//!   every data structure (bundled or competitor) in this workspace.
//!
//! The concrete bundled data structures live in the `lazylist`, `skiplist`
//! and `citrus` crates of this workspace.
//!
//! ## Example
//!
//! ```
//! use bundle::{Bundle, GlobalTimestamp, linearize_update};
//!
//! // A toy "structure": one link protected by a bundle.
//! let ts = GlobalTimestamp::new(1);
//! let bundle: Bundle<u64> = Bundle::new();
//! let a = Box::into_raw(Box::new(1u64));
//! bundle.init(a, ts.read());
//!
//! // An update installs a new target for the link.
//! let b = Box::into_raw(Box::new(2u64));
//! let when = linearize_update(&ts, 0, &[(&bundle, b)], || {
//!     // linearization point of the update (e.g. a pointer store)
//! });
//!
//! // A range query that started before the update keeps seeing `a`,
//! // one that starts now sees `b`.
//! assert_eq!(bundle.dereference(when - 1), Some(a));
//! assert_eq!(bundle.dereference(when), Some(b));
//! # unsafe { drop(Box::from_raw(a)); drop(Box::from_raw(b)); }
//! ```

pub mod api;
mod bundle_impl;
mod ctx;
mod cursor;
mod linearize;
mod recycler;
mod tracker;
mod ts;
mod twophase;

pub use bundle_impl::{Bundle, BundleIter, PendingEntry, PENDING_TS, TOMBSTONE_TS};
pub use ctx::{ReadLease, RqContext};
pub use cursor::{CursorStats, PrepareCursor};
pub use linearize::{
    finalize_update, linearize_update, prepare_update, Conflict, TxnValidateError,
};
pub use recycler::Recycler;
pub use tracker::{RqTracker, RQ_INACTIVE, RQ_PENDING};
pub use ts::GlobalTimestamp;
pub use twophase::{
    validate_chain, StagedOutcomes, TwoPhaseState, MAX_VALIDATE_ATTEMPTS, TXN_LOCK_SPINS,
};

/// Maximum number of threads supported by the per-thread state in this
/// crate's trackers and timestamps (same bound as [`ebr::DEFAULT_MAX_THREADS`]).
pub const DEFAULT_MAX_THREADS: usize = ebr::DEFAULT_MAX_THREADS;
