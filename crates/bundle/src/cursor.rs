//! The prepare-cursor protocol: positional batch staging for two-phase
//! transactional writes.
//!
//! A group commit hands each structure its staged operations in ascending
//! key order, yet a point prepare (one throwaway cursor per op — the
//! pre-cursor API) rediscovers every key's position from the structure
//! root. A [`PrepareCursor`] generalizes the located position
//! into a reusable **frontier**: after each staged operation the cursor
//! retains where the operation ended up (the locked predecessor chain in
//! a linked list, a per-level predecessor frontier in a skip list, the
//! last-visited ancestor spine in a tree), and the next seek resumes the
//! search from that frontier whenever the target key is at or beyond the
//! current position — turning a batch of `k` sorted keys into one root
//! descent plus `k` short forward walks.
//!
//! ## Frontier retention rules
//!
//! What a cursor may retain and when it must give the frontier up is the
//! heart of the protocol:
//!
//! * **Lifetime.** The cursor holds one EBR pin on its structure for its
//!   whole lifetime, so every retained raw pointer stays allocated (a
//!   node observed under the pin cannot be reclaimed while the pin is
//!   held). Retained pointers are positions, not truths — a retained
//!   node may be concurrently *unlinked*, never freed.
//! * **Locked frontier entries** (nodes whose locks the cursor's
//!   transaction holds: created nodes, no-op pins, staged predecessors)
//!   can never move or die — every structural change to a node requires
//!   its lock, and a locked node is never retired. Resuming from them
//!   needs no validation.
//! * **Unlocked frontier entries** (upper skip-list levels, tree
//!   ancestors, positions retained by [`PrepareCursor::seek_read`]) are
//!   *hints*: before resuming from one the cursor re-checks that it is
//!   still unmarked; a seek resumed through a hint that turns out stale
//!   is caught by the same under-lock validation every prepare already
//!   performs, and the retry **falls back to a root descent** (counted
//!   in [`CursorStats::descents`]).
//! * **Backward seeks.** A frontier only helps for targets at or beyond
//!   the retained position; a seek for a smaller key falls back to a
//!   root descent (the frontier is key-monotone, not a general index).
//!
//! ## Lock-merging invariant
//!
//! The frontier shares the transaction's lock bookkeeping
//! ([`crate::TwoPhaseState`]): a seek that reaches a node the
//! transaction already holds locked must *merge* with that lock (the
//! `holds` check) rather than re-acquire it, and the reverse-order undo
//! of `txn_abort` stays correct because retained positions never add
//! undo entries of their own — only staged operations do. Several
//! staged operations may therefore share one locked predecessor (two
//! adjacent inserts, a remove following a put) without double-locking or
//! double-unlocking it.
//!
//! ## When a fallback descent occurs
//!
//! 1. the cursor has no frontier yet (first seek),
//! 2. the target key is *behind* the frontier (backward seek),
//! 3. a frontier hint fails its pre-use validation (the retained node is
//!    marked), or
//! 4. an optimistic attempt resumed from the frontier fails its
//!    under-lock validation (the position went stale between the walk
//!    and the lock) — the retry within the same seek restarts from the
//!    root.
//!
//! Everything else — the eager structural change, the pending bundle
//! entry, the no-op outcome pinning — is exactly the point-prepare
//! protocol; a cursor only changes how positions are *found*.

use crate::linearize::Conflict;

/// Monotonic counters of one [`PrepareCursor`]'s seek behaviour: how
/// often the retained frontier was actually resumed versus how often a
/// full root descent ran (first seeks, backward seeks, invalidated
/// frontiers, and validation-failure retries all count as descents).
///
/// `hinted + descents` can exceed the number of seeks: a seek that
/// resumes from the frontier but loses its under-lock validation retries
/// with a root descent and contributes to both counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CursorStats {
    /// Seek attempts that resumed the search from the retained frontier.
    pub hinted: u64,
    /// Seek attempts that performed a full root descent.
    pub descents: u64,
}

impl CursorStats {
    /// Fraction of seek attempts that resumed from the frontier
    /// (`0.0` when nothing was sought).
    #[must_use]
    pub fn hint_rate(&self) -> f64 {
        let total = self.hinted + self.descents;
        if total == 0 {
            0.0
        } else {
            self.hinted as f64 / total as f64
        }
    }
}

/// A prepare cursor over one transaction token: the positional batch
/// staging surface of the two-phase commit protocol (see the module
/// docs for the frontier retention rules).
///
/// A cursor is obtained from a structure's `txn_cursor(txn)` (or through
/// the store's `ShardBackend::txn_cursor`), consumes seeks for keys in
/// (ideally) ascending order, and gives the accumulated transaction
/// token back through [`PrepareCursor::finish`] — which the caller then
/// commits (`txn_finalize`) or rolls back (`txn_abort`) exactly as
/// before. Seeks in *descending* order are legal but pay a root descent
/// each.
///
/// On [`Conflict`] from any seek the whole transaction must be aborted
/// (finish the cursor, then `txn_abort` the token), exactly like a
/// conflicting point prepare.
pub trait PrepareCursor<K, V> {
    /// The transaction token type this cursor accumulates into.
    type Txn;

    /// Stage an insert at the sought position; `Ok(false)` = key already
    /// present (no-op, present node pinned until commit). Identical
    /// semantics to a one-op point prepare, minus the root descent when
    /// the frontier reaches the key.
    fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict>;

    /// Stage a remove; `Ok(false)` = key absent (no-op, gap pinned until
    /// commit). Identical semantics to a one-op point prepare.
    fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict>;

    /// Read `key`'s current value through the frontier, over the newest
    /// pointers — the transaction's own eager writes are visible. Takes
    /// no locks and stages nothing; the located position is retained as
    /// an *unlocked* frontier hint for subsequent seeks.
    fn seek_read(&mut self, key: &K) -> Option<V>;

    /// Hinted-resume vs root-descent counters accumulated so far.
    fn stats(&self) -> CursorStats;

    /// Give the transaction token back (releasing the cursor's EBR pin
    /// and dropping the frontier); the token still holds every lock and
    /// pending entry and must be consumed by exactly one of
    /// `txn_finalize` / `txn_abort`.
    fn finish(self) -> Self::Txn;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_rate_is_resumed_fraction() {
        let mut s = CursorStats::default();
        assert_eq!(s.hint_rate(), 0.0, "no seeks yet");
        s.hinted = 3;
        s.descents = 1;
        assert!((s.hint_rate() - 0.75).abs() < 1e-12);
    }
}
