//! Algorithm 1: `LinearizeUpdateOperation`, plus the split prepare /
//! finalize surface that multi-structure transactions build on.

use crate::bundle_impl::{Bundle, PendingEntry};
use crate::ts::GlobalTimestamp;

/// A two-phase update could not acquire a lock it needs without risking a
/// deadlock; the caller must roll back everything it has prepared so far
/// (releasing its locks and neutralizing its pending entries) and retry
/// the whole transaction.
///
/// Single-structure updates never conflict — their per-structure lock
/// disciplines are cycle-free. A cross-structure transaction, however,
/// holds node locks from earlier keys while acquiring locks for later
/// ones, so its acquisition order cannot be made globally consistent with
/// every backend's internal order; bounded `try_lock` plus abort-and-retry
/// is what keeps the system deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("two-phase update lost a lock race and must retry")
    }
}

/// Why a read-write transaction's validate phase did not succeed.
///
/// The two outcomes demand different recoveries, which is why they are one
/// enum instead of two layered `Result`s:
///
/// * [`TxnValidateError::Conflict`] — a lock race with a concurrent
///   primitive operation (same meaning as [`Conflict`]). The recorded
///   reads themselves may still be valid; the *store* retries the whole
///   prepare/validate round internally after rolling back and backing
///   off, without involving the application.
/// * [`TxnValidateError::Invalidated`] — a recorded read is stale: another
///   update committed to a read key (or into a read range) between the
///   transaction's leased read timestamp and its validation. No amount of
///   internal retrying can fix this — the values the application computed
///   from are outdated — so the abort must propagate to the caller, who
///   re-runs the transaction body against a fresh snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnValidateError {
    /// Lock race; the store rolls back and retries internally.
    Conflict,
    /// Stale read set; the abort propagates to the application.
    Invalidated,
}

impl From<Conflict> for TxnValidateError {
    fn from(_: Conflict) -> Self {
        TxnValidateError::Conflict
    }
}

impl std::fmt::Display for TxnValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnValidateError::Conflict => Conflict.fmt(f),
            TxnValidateError::Invalidated => {
                f.write_str("a validated read went stale before commit; re-run the transaction")
            }
        }
    }
}

/// Step 1 of Algorithm 1, split out: install a pending entry for every
/// affected bundle and return the owner tokens (in the same order).
///
/// The caller must hold the structure-specific locks covering every bundle
/// and must eventually consume each token with [`PendingEntry::finalize`]
/// (after acquiring one timestamp from the shared clock) or
/// [`PendingEntry::abort`]. This is the surface cross-shard transactions
/// use: prepare on *every* affected structure first, advance the clock
/// once, then finalize everything with that single timestamp.
pub fn prepare_update<T>(bundles: &[(&Bundle<T>, *mut T)]) -> Vec<PendingEntry<T>> {
    bundles.iter().map(|(b, p)| b.prepare(*p)).collect()
}

/// Steps 2–4 of Algorithm 1, split out: acquire the operation's timestamp,
/// run the linearization point, and finalize every pending entry with that
/// timestamp.
pub fn finalize_update<T, F: FnOnce()>(
    clock: &GlobalTimestamp,
    tid: usize,
    pending: Vec<PendingEntry<T>>,
    lin: F,
) -> u64 {
    let ts = clock.advance(tid);
    lin();
    for entry in pending {
        entry.finalize(ts);
    }
    ts
}

/// Linearize an update operation of a bundled data structure.
///
/// The four steps of Algorithm 1:
///
/// 1. every affected bundle gets a *pending* entry holding its new link
///    value ([`Bundle::prepare`]),
/// 2. the global timestamp is atomically advanced,
/// 3. `lin` is executed — this is the operation's linearization point (for
///    the lazy list: storing the predecessor's `newestNextPtr`; for the
///    skip list: setting `fullyLinked`; for the removals: the logical
///    delete flag),
/// 4. all pending entries are finalized with the new timestamp.
///
/// The caller must hold whatever structure-specific locks make the physical
/// change valid; bundling itself only requires that the same operation that
/// prepared a bundle is the one that finalizes it.
///
/// Returns the timestamp assigned to the update.
pub fn linearize_update<T, F: FnOnce()>(
    clock: &GlobalTimestamp,
    tid: usize,
    bundles: &[(&Bundle<T>, *mut T)],
    lin: F,
) -> u64 {
    // Step 1: install pending entries. Steps 2-4: acquire the operation's
    // timestamp, run the linearization point, finalize every entry.
    finalize_update(clock, tid, prepare_update(bundles), lin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn assigns_increasing_timestamps_and_updates_all_bundles() {
        let clock = GlobalTimestamp::new(1);
        let b1: Bundle<u64> = Bundle::new();
        let b2: Bundle<u64> = Bundle::new();
        b1.init(std::ptr::null_mut(), 0);
        b2.init(std::ptr::null_mut(), 0);
        let p1 = Box::into_raw(Box::new(1u64));
        let p2 = Box::into_raw(Box::new(2u64));

        let lin_marker = AtomicU64::new(0);
        let t1 = linearize_update(&clock, 0, &[(&b1, p1), (&b2, p2)], || {
            lin_marker.store(1, Ordering::SeqCst);
        });
        assert_eq!(t1, 1);
        assert_eq!(lin_marker.load(Ordering::SeqCst), 1);
        assert_eq!(b1.dereference(t1), Some(p1));
        assert_eq!(b2.dereference(t1), Some(p2));
        assert_eq!(b1.dereference(t1 - 1), Some(std::ptr::null_mut()));

        let t2 = linearize_update(&clock, 0, &[(&b1, p2)], || {});
        assert_eq!(t2, 2);
        assert_eq!(b1.dereference(t2), Some(p2));
        assert_eq!(b1.dereference(t1), Some(p1));
        unsafe {
            drop(Box::from_raw(p1));
            drop(Box::from_raw(p2));
        }
    }

    #[test]
    fn split_prepare_finalize_spans_structures_with_one_timestamp() {
        // The transaction pattern: prepare on two independent bundles (as
        // if they lived on different shards), advance the clock once, and
        // finalize both with that single timestamp — an atomic cut.
        let clock = GlobalTimestamp::new(1);
        let b1: Bundle<u64> = Bundle::new();
        let b2: Bundle<u64> = Bundle::new();
        let old = Box::into_raw(Box::new(0u64));
        b1.init(old, 0);
        b2.init(old, 0);
        let p1 = Box::into_raw(Box::new(1u64));
        let p2 = Box::into_raw(Box::new(2u64));

        let mut pending = prepare_update(&[(&b1, p1)]);
        pending.extend(prepare_update(&[(&b2, p2)]));
        let ts = finalize_update(&clock, 0, pending, || {});
        assert_eq!(ts, 1);
        assert_eq!(b1.dereference(ts), Some(p1));
        assert_eq!(b2.dereference(ts), Some(p2));
        assert_eq!(b1.dereference(ts - 1), Some(old));
        assert_eq!(b2.dereference(ts - 1), Some(old));
        unsafe {
            drop(Box::from_raw(old));
            drop(Box::from_raw(p1));
            drop(Box::from_raw(p2));
        }
    }

    #[test]
    fn aborted_prepare_is_invisible_at_every_timestamp() {
        let clock = GlobalTimestamp::new(1);
        let b: Bundle<u64> = Bundle::new();
        let old = Box::into_raw(Box::new(0u64));
        b.init(old, 0);
        let p = Box::into_raw(Box::new(1u64));
        let pending = prepare_update(&[(&b, p)]);
        for e in pending {
            e.abort();
        }
        // The clock never advanced and the bundle resolves as before.
        assert_eq!(clock.read(), 0);
        assert_eq!(b.dereference(0), Some(old));
        assert_eq!(b.dereference(100), Some(old));
        unsafe {
            drop(Box::from_raw(old));
            drop(Box::from_raw(p));
        }
    }

    #[test]
    fn concurrent_reader_sees_update_not_before_linearization() {
        // Models the T1/T2 scenario of §3.3: a reader that observes the
        // linearization point (the shared pointer) and then dereferences the
        // bundle at the current timestamp must see the new value, even if it
        // races with finalization.
        let clock = Arc::new(GlobalTimestamp::new(2));
        let bundle: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let shared: Arc<AtomicPtr<u64>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
        let initial = Box::into_raw(Box::new(0u64));
        bundle.init(initial, 0);
        shared.store(initial, Ordering::SeqCst);

        let new_val = Box::into_raw(Box::new(42u64));
        let new_val_addr = new_val as usize;
        let writer = {
            let clock = Arc::clone(&clock);
            let bundle = Arc::clone(&bundle);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let new_val = new_val_addr as *mut u64;
                linearize_update(&clock, 0, &[(&bundle, new_val)], || {
                    shared.store(new_val, Ordering::SeqCst);
                });
            })
        };
        // Reader: spin until the linearization point is visible, then a
        // "range query" started now must observe the new value too.
        loop {
            if shared.load(Ordering::SeqCst) == new_val {
                let ts = clock.read();
                let seen = bundle.dereference(ts).expect("entry must satisfy ts");
                assert_eq!(seen, new_val, "linearized update missing from snapshot");
                break;
            }
            std::hint::spin_loop();
        }
        writer.join().unwrap();
        unsafe {
            drop(Box::from_raw(initial));
            drop(Box::from_raw(new_val));
        }
    }
}
