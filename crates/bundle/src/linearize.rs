//! Algorithm 1: `LinearizeUpdateOperation`.

use crate::bundle_impl::Bundle;
use crate::ts::GlobalTimestamp;

/// Linearize an update operation of a bundled data structure.
///
/// The four steps of Algorithm 1:
///
/// 1. every affected bundle gets a *pending* entry holding its new link
///    value ([`Bundle::prepare`]),
/// 2. the global timestamp is atomically advanced,
/// 3. `lin` is executed — this is the operation's linearization point (for
///    the lazy list: storing the predecessor's `newestNextPtr`; for the
///    skip list: setting `fullyLinked`; for the removals: the logical
///    delete flag),
/// 4. all pending entries are finalized with the new timestamp.
///
/// The caller must hold whatever structure-specific locks make the physical
/// change valid; bundling itself only requires that the same operation that
/// prepared a bundle is the one that finalizes it.
///
/// Returns the timestamp assigned to the update.
pub fn linearize_update<T, F: FnOnce()>(
    clock: &GlobalTimestamp,
    tid: usize,
    bundles: &[(&Bundle<T>, *mut T)],
    lin: F,
) -> u64 {
    // Step 1: install pending entries.
    for (bundle, ptr) in bundles {
        bundle.prepare(*ptr);
    }
    // Step 2: acquire the operation's timestamp.
    let ts = clock.advance(tid);
    // Step 3: linearization point (made visible to primitive operations).
    lin();
    // Step 4: finalize, releasing range queries blocked on the pending
    // entries.
    for (bundle, _) in bundles {
        bundle.finalize(ts);
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn assigns_increasing_timestamps_and_updates_all_bundles() {
        let clock = GlobalTimestamp::new(1);
        let b1: Bundle<u64> = Bundle::new();
        let b2: Bundle<u64> = Bundle::new();
        b1.init(std::ptr::null_mut(), 0);
        b2.init(std::ptr::null_mut(), 0);
        let p1 = Box::into_raw(Box::new(1u64));
        let p2 = Box::into_raw(Box::new(2u64));

        let lin_marker = AtomicU64::new(0);
        let t1 = linearize_update(&clock, 0, &[(&b1, p1), (&b2, p2)], || {
            lin_marker.store(1, Ordering::SeqCst);
        });
        assert_eq!(t1, 1);
        assert_eq!(lin_marker.load(Ordering::SeqCst), 1);
        assert_eq!(b1.dereference(t1), Some(p1));
        assert_eq!(b2.dereference(t1), Some(p2));
        assert_eq!(b1.dereference(t1 - 1), Some(std::ptr::null_mut()));

        let t2 = linearize_update(&clock, 0, &[(&b1, p2)], || {});
        assert_eq!(t2, 2);
        assert_eq!(b1.dereference(t2), Some(p2));
        assert_eq!(b1.dereference(t1), Some(p1));
        unsafe {
            drop(Box::from_raw(p1));
            drop(Box::from_raw(p2));
        }
    }

    #[test]
    fn concurrent_reader_sees_update_not_before_linearization() {
        // Models the T1/T2 scenario of §3.3: a reader that observes the
        // linearization point (the shared pointer) and then dereferences the
        // bundle at the current timestamp must see the new value, even if it
        // races with finalization.
        let clock = Arc::new(GlobalTimestamp::new(2));
        let bundle: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let shared: Arc<AtomicPtr<u64>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
        let initial = Box::into_raw(Box::new(0u64));
        bundle.init(initial, 0);
        shared.store(initial, Ordering::SeqCst);

        let new_val = Box::into_raw(Box::new(42u64));
        let new_val_addr = new_val as usize;
        let writer = {
            let clock = Arc::clone(&clock);
            let bundle = Arc::clone(&bundle);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let new_val = new_val_addr as *mut u64;
                linearize_update(&clock, 0, &[(&bundle, new_val)], || {
                    shared.store(new_val, Ordering::SeqCst);
                });
            })
        };
        // Reader: spin until the linearization point is visible, then a
        // "range query" started now must observe the new value too.
        loop {
            if shared.load(Ordering::SeqCst) == new_val {
                let ts = clock.read();
                let seen = bundle.dereference(ts).expect("entry must satisfy ts");
                assert_eq!(seen, new_val, "linearized update missing from snapshot");
                break;
            }
            std::hint::spin_loop();
        }
        writer.join().unwrap();
        unsafe {
            drop(Box::from_raw(initial));
            drop(Box::from_raw(new_val));
        }
    }
}
