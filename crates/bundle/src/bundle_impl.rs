//! The bundle itself: a history of link values tagged with timestamps.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ebr::Guard;

/// Timestamp value marking a bundle entry that has been prepared but whose
/// update has not yet been finalized (Algorithm 2, `PENDING_TS`).
pub const PENDING_TS: u64 = u64::MAX;

/// Timestamp of an *aborted* entry that no snapshot may ever satisfy.
///
/// When a two-phase update ([`Bundle::prepare`] + [`PendingEntry::abort`])
/// is rolled back on a bundle that had no prior history (the node was
/// created by the aborted transaction itself), the pending entry cannot be
/// neutralized by duplicating the previous link value — there is none.
/// Stamping it with `TOMBSTONE_TS` keeps the entry's timestamp ordering
/// intact (it is newer than every real timestamp) while guaranteeing
/// `dereference` never returns it: readers fall through to `None` and
/// restart on the guaranteed bundle-only path, which cannot reach the
/// discarded node.
pub const TOMBSTONE_TS: u64 = u64::MAX - 1;

/// One record of a link's history: the pointer value and the global
/// timestamp at which that value was installed (Listing 1, `BundleEntry`).
///
/// `ptr` is atomic so the *owner* of a still-pending entry can restage the
/// link value (transaction merge) or neutralize it (abort) before
/// publishing the timestamp; readers only load `ptr` after observing a
/// non-pending `ts` with `Acquire`, which orders them after the owner's
/// final store.
struct BundleEntry<T> {
    ptr: AtomicPtr<T>,
    ts: AtomicU64,
    next: AtomicPtr<BundleEntry<T>>,
}

impl<T> BundleEntry<T> {
    fn boxed(ptr: *mut T, ts: u64) -> *mut BundleEntry<T> {
        Box::into_raw(Box::new(BundleEntry {
            ptr: AtomicPtr::new(ptr),
            ts: AtomicU64::new(ts),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// Owner token for a pending bundle entry installed by [`Bundle::prepare`].
///
/// Exactly one of [`PendingEntry::finalize`] or [`PendingEntry::abort`]
/// must eventually run for every prepared entry — a forgotten pending
/// entry blocks every future update and snapshot read of its bundle.
/// (The single-structure fast path, [`crate::linearize_update`], finalizes
/// through [`Bundle::finalize`] instead, which targets the same head
/// entry; the token is how *multi*-bundle transactions carry their
/// prepared state across structures.)
///
/// The token holds a raw pointer to the entry, which stays owned by the
/// bundle; the caller must keep the node owning the bundle alive (e.g. by
/// holding its lock) until the token is consumed.
#[derive(Debug)]
#[must_use = "a dropped pending entry blocks every future update and \
              snapshot read of its bundle; finalize or abort it (or use \
              Bundle::finalize for the single-structure path)"]
pub struct PendingEntry<T> {
    entry: *mut BundleEntry<T>,
}

// Safety: the token is an exclusive capability over one pending entry; the
// entry itself is only mutated through atomics.
unsafe impl<T: Send + Sync> Send for PendingEntry<T> {}

impl<T> PendingEntry<T> {
    /// Restage the link value of the still-pending entry (owner only).
    ///
    /// Used when one transaction updates the same link twice: the second
    /// update merges into the first entry instead of preparing a new one
    /// (both would finalize with the same timestamp anyway).
    pub fn set_ptr(&self, ptr: *mut T) {
        let e = unsafe { &*self.entry };
        debug_assert_eq!(e.ts.load(Ordering::Acquire), PENDING_TS);
        e.ptr.store(ptr, Ordering::Relaxed);
    }

    /// The currently staged link value.
    #[must_use]
    pub fn staged_ptr(&self) -> *mut T {
        unsafe { &*self.entry }.ptr.load(Ordering::Acquire)
    }

    /// Publish the entry with its commit timestamp, releasing every reader
    /// and preparer spinning on the pending state.
    pub fn finalize(self, ts: u64) {
        let e = unsafe { &*self.entry };
        debug_assert_eq!(
            e.ts.load(Ordering::Acquire),
            PENDING_TS,
            "finalize must target a pending entry"
        );
        e.ts.store(ts, Ordering::Release);
    }

    /// Roll the entry back: readers behave as if the prepared update never
    /// happened.
    ///
    /// If the bundle has older history the entry becomes a *neutralized
    /// duplicate* — same pointer and timestamp as the entry beneath it, so
    /// every `dereference` resolves exactly as before the prepare. If the
    /// entry is the bundle's first (the node was created by the aborting
    /// transaction), it is stamped [`TOMBSTONE_TS`], which no snapshot
    /// satisfies; the caller must also make the node unreachable.
    pub fn abort(self) {
        let e = unsafe { &*self.entry };
        debug_assert_eq!(e.ts.load(Ordering::Acquire), PENDING_TS);
        let prior = e.next.load(Ordering::Acquire);
        if prior.is_null() {
            e.ts.store(TOMBSTONE_TS, Ordering::Release);
        } else {
            let p = unsafe { &*prior };
            e.ptr
                .store(p.ptr.load(Ordering::Acquire), Ordering::Relaxed);
            e.ts.store(p.ts.load(Ordering::Acquire), Ordering::Release);
        }
    }
}

/// A bundled reference: the history of one link in a concurrent linked data
/// structure (Listing 1, `Bundle`).
///
/// Entries are kept newest-first and are strictly sorted by timestamp
/// because updates tag entries with a monotonically increasing global
/// timestamp while holding the *pending* slot at the head.
///
/// The data structure that owns this bundle keeps its own "newest" raw
/// pointer (the paper's `newestNextPtr`) next to it, so primitive operations
/// never touch the bundle at all.
pub struct Bundle<T> {
    head: AtomicPtr<BundleEntry<T>>,
}

// Safety: the bundle only stores raw pointers; it never dereferences the
// `T`s it points to. Sharing it across threads is exactly its purpose: all
// mutation goes through atomics with the pending protocol below.
unsafe impl<T: Send + Sync> Send for Bundle<T> {}
unsafe impl<T: Send + Sync> Sync for Bundle<T> {}

impl<T> Default for Bundle<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Bundle<T> {
    /// An empty bundle (no history yet).
    pub fn new() -> Self {
        Bundle {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Install the initial entry of a link created while the structure (or
    /// node) is still private to one thread — e.g. the sentinel link of an
    /// empty list, timestamped with the initial `globalTs` value.
    pub fn init(&self, ptr: *mut T, ts: u64) {
        let e = BundleEntry::boxed(ptr, ts);
        self.head.store(e, Ordering::Release);
    }

    /// Returns `true` if the bundle has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Number of entries currently in the bundle (diagnostic; O(n)).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            n += 1;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }
        n
    }

    /// Algorithm 2, `PrepareBundle`: atomically prepend a new entry in the
    /// pending state, waiting for any other update's pending entry to be
    /// finalized first so that entries stay ordered by timestamp.
    ///
    /// Returns the owner token; the same logical update must consume it
    /// with [`PendingEntry::finalize`] / [`PendingEntry::abort`], or call
    /// [`Bundle::finalize`] (the paper's single-structure path, which
    /// targets the same head entry).
    pub fn prepare(&self, ptr: *mut T) -> PendingEntry<T> {
        let e = BundleEntry::boxed(ptr, PENDING_TS);
        loop {
            let expected = self.head.load(Ordering::Acquire);
            if !expected.is_null() {
                // Wait until the current head is finalized; a pending head
                // belongs to a concurrent update that has already passed its
                // timestamp acquisition and will finish promptly.
                while unsafe { &*expected }.ts.load(Ordering::Acquire) == PENDING_TS {
                    std::hint::spin_loop();
                }
            }
            unsafe { &*e }.next.store(expected, Ordering::Relaxed);
            if self
                .head
                .compare_exchange(expected, e, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return PendingEntry { entry: e };
            }
        }
    }

    /// Algorithm 1, `FinalizeBundle`: publish the timestamp of the entry
    /// prepared by the same operation. Must be called exactly once after
    /// [`Bundle::prepare`] by the same logical update.
    pub fn finalize(&self, ts: u64) {
        let head = self.head.load(Ordering::Acquire);
        debug_assert!(!head.is_null(), "finalize without prepare");
        let entry = unsafe { &*head };
        debug_assert_eq!(
            entry.ts.load(Ordering::Acquire),
            PENDING_TS,
            "finalize must target the pending entry installed by prepare"
        );
        entry.ts.store(ts, Ordering::Release);
    }

    /// `DereferenceBundle` (§3.3): return the link value that was current at
    /// logical time `ts`, i.e. the newest entry whose timestamp is `<= ts`.
    ///
    /// Blocks (spins) while the head entry is pending, so a range query
    /// never misses an update that linearized before the query started but
    /// whose bundles were not yet finalized.
    ///
    /// Returns `None` when no entry satisfies `ts`, which tells the range
    /// query that its optimistic traversal landed on a node inserted after
    /// its snapshot and that it must restart (Algorithm 3, line 7).
    pub fn dereference(&self, ts: u64) -> Option<*mut T> {
        let head = self.head.load(Ordering::Acquire);
        if head.is_null() {
            return None;
        }
        // Only the head can be pending.
        while unsafe { &*head }.ts.load(Ordering::Acquire) == PENDING_TS {
            std::hint::spin_loop();
        }
        let mut curr = head;
        while !curr.is_null() {
            let e = unsafe { &*curr };
            if e.ts.load(Ordering::Acquire) <= ts {
                return Some(e.ptr.load(Ordering::Acquire));
            }
            curr = e.next.load(Ordering::Acquire);
        }
        None
    }

    /// The most recent (finalized or pending) link value recorded in the
    /// bundle, if any. Primarily a diagnostic: structures keep their own
    /// `newest` pointer outside the bundle.
    pub fn newest(&self) -> Option<*mut T> {
        let head = self.head.load(Ordering::Acquire);
        if head.is_null() {
            None
        } else {
            Some(unsafe { &*head }.ptr.load(Ordering::Acquire))
        }
    }

    /// The read-version surface of the bundle: the link value current at
    /// logical time `ts`. Alias of [`Bundle::dereference`], named for the
    /// transactional read path — a read-write transaction answers all of
    /// its reads through the bundles at one leased snapshot timestamp
    /// (see [`crate::RqContext::lease_read`]), which is what makes the
    /// whole read set a single atomic cut.
    pub fn read_at(&self, ts: u64) -> Option<*mut T> {
        self.dereference(ts)
    }

    /// Timestamp of the newest *committed* entry: the first entry from the
    /// head that is not pending. Unlike [`Bundle::dereference`] this never
    /// blocks on a pending head — the pending entry belongs to an
    /// uncommitted transaction (possibly the caller's own), and a
    /// validation pass run under the shard intent lock must look *past*
    /// it at the state every snapshot could actually have observed.
    ///
    /// Returns `None` for an empty bundle. A [`TOMBSTONE_TS`] head (the
    /// neutralized first entry of an aborted transaction's node) is
    /// reported as-is: it is newer than every real timestamp, so
    /// [`Bundle::validate_at`] correctly fails on such a bundle.
    pub fn newest_committed_ts(&self) -> Option<u64> {
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            let e = unsafe { &*curr };
            let ts = e.ts.load(Ordering::Acquire);
            if ts != PENDING_TS {
                return Some(ts);
            }
            curr = e.next.load(Ordering::Acquire);
        }
        None
    }

    /// `true` if the link has not committed any change since `ts`: the
    /// newest committed entry's timestamp is `<= ts` (an empty bundle is
    /// vacuously unchanged). A value observed through
    /// [`Bundle::read_at`]`(ts)` is still current exactly when the bundle
    /// validates at `ts`.
    ///
    /// Note on the shipped validate pass: the structures' `txn_validate`
    /// currently re-checks recorded reads by *node identity* (re-walk the
    /// range, compare the `(key, node)` list), not through this
    /// predicate — node comparison tolerates committed neighbor updates
    /// that did not change the read's outcome, where a per-bundle
    /// timestamp check would abort spuriously. `validate_at` is the
    /// finer-grained per-link primitive for validating *single* reads
    /// without a range walk (the ROADMAP "precision of read validation"
    /// direction).
    pub fn validate_at(&self, ts: u64) -> bool {
        self.newest_committed_ts().is_none_or(|t| t <= ts)
    }

    /// Timestamp of the newest finalized entry (diagnostic).
    pub fn newest_ts(&self) -> Option<u64> {
        let head = self.head.load(Ordering::Acquire);
        if head.is_null() {
            return None;
        }
        let ts = unsafe { &*head }.ts.load(Ordering::Acquire);
        if ts == PENDING_TS {
            None
        } else {
            Some(ts)
        }
    }

    /// Iterate over `(ptr, ts)` pairs, newest first (diagnostic / tests).
    pub fn iter(&self) -> BundleIter<'_, T> {
        BundleIter {
            curr: self.head.load(Ordering::Acquire),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reclaim entries that no active range query can need (Appendix B,
    /// "Freeing Bundle Entries").
    ///
    /// Keeps every entry newer than `oldest_active` plus the first entry
    /// that satisfies `oldest_active`; everything older is detached and
    /// retired through the supplied EBR guard so that range queries that
    /// already hold a pointer into the chain remain safe.
    ///
    /// Concurrency contract: at most one thread may run cleanup on a given
    /// bundle at a time (the structures delegate this to a single
    /// [`crate::Recycler`] thread or to the thread holding the node lock).
    /// Cleanup is safe to run concurrently with `prepare`/`finalize`/
    /// `dereference` because it never modifies the head pointer, only the
    /// `next` field of an already-satisfying (hence finalized) entry.
    ///
    /// Returns the number of entries retired.
    pub fn reclaim_up_to(&self, oldest_active: u64, guard: &Guard<'_>) -> usize {
        let mut curr = self.head.load(Ordering::Acquire);
        // Find the first entry that satisfies the oldest active range query.
        while !curr.is_null() {
            let e = unsafe { &*curr };
            let ts = e.ts.load(Ordering::Acquire);
            if ts != PENDING_TS && ts <= oldest_active {
                break;
            }
            curr = e.next.load(Ordering::Acquire);
        }
        if curr.is_null() {
            return 0;
        }
        // Everything *after* `curr` is unreachable for present and future
        // range queries; detach the tail and retire it.
        let keeper = unsafe { &*curr };
        let mut tail = keeper.next.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut retired = 0;
        while !tail.is_null() {
            let next = unsafe { &*tail }.next.load(Ordering::Acquire);
            // Safety: the entry has been unlinked from the bundle and is
            // only reachable by range queries that pinned before now; EBR
            // defers the free past their guards.
            unsafe { guard.retire(tail) };
            retired += 1;
            tail = next;
        }
        retired
    }
}

impl<T> Drop for Bundle<T> {
    fn drop(&mut self) {
        // Exclusive access: free the entry chain (the pointed-to nodes are
        // owned by the data structure, not by the bundle).
        let mut curr = *self.head.get_mut();
        while !curr.is_null() {
            let boxed = unsafe { Box::from_raw(curr) };
            curr = boxed.next.load(Ordering::Relaxed);
        }
    }
}

impl<T> std::fmt::Debug for Bundle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: Vec<(usize, u64)> = self.iter().map(|(p, ts)| (p as usize, ts)).collect();
        f.debug_struct("Bundle").field("entries", &entries).finish()
    }
}

/// Iterator over the `(ptr, ts)` entries of a bundle, newest first.
pub struct BundleIter<'a, T> {
    curr: *mut BundleEntry<T>,
    _marker: std::marker::PhantomData<&'a Bundle<T>>,
}

impl<'a, T> Iterator for BundleIter<'a, T> {
    type Item = (*mut T, u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.curr.is_null() {
            return None;
        }
        let e = unsafe { &*self.curr };
        let item = (e.ptr.load(Ordering::Acquire), e.ts.load(Ordering::Acquire));
        self.curr = e.next.load(Ordering::Acquire);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebr::{Collector, ReclaimMode};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn leak(v: u64) -> *mut u64 {
        Box::into_raw(Box::new(v))
    }
    unsafe fn free(p: *mut u64) {
        drop(Box::from_raw(p));
    }

    /// Raw pointers are not `Send`; tests move them into threads as `usize`.
    #[derive(Clone, Copy)]
    struct SendPtr(usize);
    impl SendPtr {
        fn new(p: *mut u64) -> Self {
            SendPtr(p as usize)
        }
        fn get(self) -> *mut u64 {
            self.0 as *mut u64
        }
    }

    #[test]
    fn init_and_dereference() {
        let b: Bundle<u64> = Bundle::new();
        assert!(b.is_empty());
        assert_eq!(b.dereference(10), None);
        let p = leak(7);
        b.init(p, 0);
        assert_eq!(b.dereference(0), Some(p));
        assert_eq!(b.dereference(100), Some(p));
        assert_eq!(b.len(), 1);
        unsafe { free(p) };
    }

    #[test]
    fn entries_sorted_and_satisfying_entry_selected() {
        let b: Bundle<u64> = Bundle::new();
        let p0 = leak(0);
        let p1 = leak(1);
        let p2 = leak(2);
        b.init(p0, 0);
        let _ = b.prepare(p1);
        b.finalize(3);
        let _ = b.prepare(p2);
        b.finalize(7);
        // Newest first, timestamps strictly decreasing along the chain.
        let ts: Vec<u64> = b.iter().map(|(_, t)| t).collect();
        assert_eq!(ts, vec![7, 3, 0]);
        assert_eq!(b.dereference(0), Some(p0));
        assert_eq!(b.dereference(2), Some(p0));
        assert_eq!(b.dereference(3), Some(p1));
        assert_eq!(b.dereference(6), Some(p1));
        assert_eq!(b.dereference(7), Some(p2));
        assert_eq!(b.dereference(u64::MAX - 1), Some(p2));
        assert_eq!(b.newest(), Some(p2));
        assert_eq!(b.newest_ts(), Some(7));
        unsafe {
            free(p0);
            free(p1);
            free(p2);
        }
    }

    #[test]
    fn dereference_returns_none_for_too_old_snapshot() {
        let b: Bundle<u64> = Bundle::new();
        let p = leak(9);
        b.init(p, 5);
        // A snapshot taken before the link existed must not see it.
        assert_eq!(b.dereference(4), None);
        unsafe { free(p) };
    }

    #[test]
    fn dereference_blocks_until_pending_finalized() {
        let b: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let p0 = leak(0);
        b.init(p0, 0);
        let p1 = leak(1);
        let _ = b.prepare(p1);

        let released = Arc::new(AtomicBool::new(false));
        let p1s = SendPtr::new(p1);
        let reader = {
            let b = Arc::clone(&b);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                // This dereference must not return until finalize happens.
                let got = b.dereference(1);
                assert!(
                    released.load(Ordering::SeqCst),
                    "dereference returned while the head entry was still pending"
                );
                assert_eq!(got, Some(p1s.get()));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        b.finalize(1);
        reader.join().unwrap();
        unsafe {
            free(p0);
            free(p1);
        }
    }

    #[test]
    fn prepare_blocks_other_prepares_until_finalize() {
        let b: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let p0 = leak(0);
        b.init(p0, 0);
        let p1 = leak(1);
        let p2 = leak(2);
        let _ = b.prepare(p1);
        let released = Arc::new(AtomicBool::new(false));
        let p2s = SendPtr::new(p2);
        let other = {
            let b = Arc::clone(&b);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                let p2 = p2s.get();
                let _ = b.prepare(p2);
                assert!(
                    released.load(Ordering::SeqCst),
                    "second prepare completed while first entry was pending"
                );
                b.finalize(2);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        b.finalize(1);
        other.join().unwrap();
        let ts: Vec<u64> = b.iter().map(|(_, t)| t).collect();
        assert_eq!(ts, vec![2, 1, 0], "entries remain ordered by timestamp");
        unsafe {
            free(p0);
            free(p1);
            free(p2);
        }
    }

    #[test]
    fn reclaim_keeps_entry_needed_by_oldest_range_query() {
        let collector = Collector::new(1, ReclaimMode::Reclaim);
        let b: Bundle<u64> = Bundle::new();
        let ptrs: Vec<*mut u64> = (0..5).map(leak).collect();
        b.init(ptrs[0], 0);
        for (i, &p) in ptrs.iter().enumerate().skip(1) {
            let _ = b.prepare(p);
            b.finalize(i as u64 * 10);
        }
        assert_eq!(b.len(), 5);
        let guard = collector.pin(0);
        // Oldest active range query started at ts=25: entries 40, 30, 20 must
        // stay (20 satisfies it); 10 and 0 can go.
        let retired = b.reclaim_up_to(25, &guard);
        assert_eq!(retired, 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dereference(25), Some(ptrs[2]));
        assert_eq!(b.dereference(40), Some(ptrs[4]));
        // A second pass is a no-op.
        assert_eq!(b.reclaim_up_to(25, &guard), 0);
        drop(guard);
        for p in ptrs {
            unsafe { free(p) };
        }
    }

    #[test]
    fn reclaim_with_all_entries_newer_is_a_noop() {
        let collector = Collector::new(1, ReclaimMode::Reclaim);
        let b: Bundle<u64> = Bundle::new();
        let p = leak(1);
        b.init(p, 50);
        let guard = collector.pin(0);
        assert_eq!(b.reclaim_up_to(10, &guard), 0);
        assert_eq!(b.len(), 1);
        drop(guard);
        unsafe { free(p) };
    }

    #[test]
    fn pending_entry_token_finalizes_and_merges() {
        let b: Bundle<u64> = Bundle::new();
        let p0 = leak(0);
        let p1 = leak(1);
        let p2 = leak(2);
        b.init(p0, 0);
        let pe = b.prepare(p1);
        assert_eq!(pe.staged_ptr(), p1);
        // A second update of the same link by the same transaction merges
        // into the pending entry instead of preparing a new one.
        pe.set_ptr(p2);
        assert_eq!(pe.staged_ptr(), p2);
        pe.finalize(5);
        assert_eq!(b.len(), 2);
        assert_eq!(b.dereference(5), Some(p2));
        assert_eq!(b.dereference(4), Some(p0));
        unsafe {
            free(p0);
            free(p1);
            free(p2);
        }
    }

    #[test]
    fn aborted_entry_with_history_neutralizes_to_prior_value() {
        let b: Bundle<u64> = Bundle::new();
        let p0 = leak(0);
        let p1 = leak(1);
        b.init(p0, 3);
        let pe = b.prepare(p1);
        pe.abort();
        // Readers at every timestamp resolve exactly as before the prepare.
        assert_eq!(b.dereference(3), Some(p0));
        assert_eq!(b.dereference(100), Some(p0));
        assert_eq!(b.dereference(2), None);
        // The neutralized duplicate keeps the bundle's timestamp ordering.
        let ts: Vec<u64> = b.iter().map(|(_, t)| t).collect();
        assert_eq!(ts, vec![3, 3]);
        // And a later real update still layers on top normally.
        let p2 = leak(2);
        b.prepare(p2).finalize(9);
        assert_eq!(b.dereference(8), Some(p0));
        assert_eq!(b.dereference(9), Some(p2));
        unsafe {
            free(p0);
            free(p1);
            free(p2);
        }
    }

    #[test]
    fn aborted_first_entry_becomes_unsatisfiable_tombstone() {
        let b: Bundle<u64> = Bundle::new();
        let p = leak(7);
        let pe = b.prepare(p);
        pe.abort();
        // No snapshot may ever satisfy the tombstone.
        assert_eq!(b.dereference(0), None);
        assert_eq!(b.dereference(u64::MAX - 2), None);
        assert_eq!(b.newest_ts(), Some(TOMBSTONE_TS));
        unsafe { free(p) };
    }

    #[test]
    fn abort_releases_spinning_dereference() {
        let b: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let p0 = leak(0);
        b.init(p0, 1);
        let p1 = leak(1);
        let pe = b.prepare(p1);
        let released = Arc::new(AtomicBool::new(false));
        let p0s = SendPtr::new(p0);
        let reader = {
            let b = Arc::clone(&b);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                let got = b.dereference(10);
                assert!(
                    released.load(Ordering::SeqCst),
                    "dereference returned while the entry was still pending"
                );
                assert_eq!(got, Some(p0s.get()), "aborted update must be invisible");
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        pe.abort();
        reader.join().unwrap();
        unsafe {
            free(p0);
            free(p1);
        }
    }

    #[test]
    fn read_at_and_validate_at_form_the_read_version_surface() {
        let b: Bundle<u64> = Bundle::new();
        // Empty bundle: no value at any version, vacuously valid.
        assert_eq!(b.read_at(10), None);
        assert!(b.validate_at(0));
        assert_eq!(b.newest_committed_ts(), None);
        let p0 = leak(0);
        let p1 = leak(1);
        b.init(p0, 2);
        b.prepare(p1).finalize(7);
        assert_eq!(b.read_at(2), Some(p0));
        assert_eq!(b.read_at(7), Some(p1));
        assert_eq!(b.newest_committed_ts(), Some(7));
        // A read taken at ts < 7 is stale (the link changed at 7)...
        assert!(!b.validate_at(2));
        assert!(!b.validate_at(6));
        // ...one taken at or after 7 is still current.
        assert!(b.validate_at(7));
        assert!(b.validate_at(100));
        unsafe {
            free(p0);
            free(p1);
        }
    }

    #[test]
    fn newest_committed_ts_skips_pending_entries_without_blocking() {
        let b: Bundle<u64> = Bundle::new();
        let p0 = leak(0);
        let p1 = leak(1);
        b.init(p0, 3);
        // A pending head (an in-flight transaction's entry) is invisible
        // to the committed-version view — and the call must not spin.
        let pe = b.prepare(p1);
        assert_eq!(b.newest_committed_ts(), Some(3));
        assert!(b.validate_at(3), "own pending must not invalidate reads");
        pe.finalize(9);
        assert_eq!(b.newest_committed_ts(), Some(9));
        assert!(!b.validate_at(3));
        unsafe {
            free(p0);
            free(p1);
        }
    }

    #[test]
    fn tombstoned_first_entry_never_validates() {
        let b: Bundle<u64> = Bundle::new();
        let p = leak(7);
        b.prepare(p).abort();
        // The aborted-created-node tombstone is newer than every real
        // timestamp: no read can validate against it.
        assert_eq!(b.newest_committed_ts(), Some(TOMBSTONE_TS));
        assert!(!b.validate_at(u64::MAX - 2));
        unsafe { free(p) };
    }

    #[test]
    fn concurrent_prepares_keep_bundle_sorted() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 200;
        let b: Arc<Bundle<u64>> = Arc::new(Bundle::new());
        let clock = Arc::new(crate::GlobalTimestamp::new(THREADS));
        b.init(std::ptr::null_mut(), 0);
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let b = Arc::clone(&b);
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let _ = b.prepare(std::ptr::null_mut());
                    let ts = clock.advance(tid);
                    b.finalize(ts);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ts: Vec<u64> = b.iter().map(|(_, t)| t).collect();
        assert_eq!(ts.len(), THREADS * PER_THREAD + 1);
        let mut sorted = ts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ts, sorted, "bundle entries must be sorted newest-first");
    }
}
