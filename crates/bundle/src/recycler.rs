//! Background cleanup thread ("delegated to a background thread", §7 /
//! Appendix B) that periodically prunes stale bundle entries and helps the
//! epoch collector advance.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A stoppable background thread that repeatedly runs a cleanup closure with
/// a configurable delay `d` between passes — the knob varied in Table 1 of
/// the paper (d ∈ {0ms, 1ms, 10ms, 100ms}).
///
/// The closure is supplied by the data structure; typically it computes the
/// oldest active range query from the structure's [`crate::RqTracker`] and
/// walks the structure calling [`crate::Bundle::reclaim_up_to`] on every
/// bundle, retiring stale entries through the structure's EBR collector.
pub struct Recycler {
    stop: Arc<AtomicBool>,
    passes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Recycler {
    /// Spawn a recycler running `cleanup` every `delay` (a zero delay means
    /// back-to-back passes, the paper's most aggressive configuration).
    pub fn spawn<F>(delay: Duration, cleanup: F) -> Self
    where
        F: Fn() + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let passes = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let passes2 = Arc::clone(&passes);
        let handle = std::thread::Builder::new()
            .name("bundle-recycler".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    cleanup();
                    passes2.fetch_add(1, Ordering::Relaxed);
                    if delay.is_zero() {
                        std::thread::yield_now();
                    } else {
                        // Sleep in small slices so shutdown stays responsive
                        // even with the 100ms delay configuration.
                        let mut remaining = delay;
                        let slice = Duration::from_millis(5);
                        while !remaining.is_zero() && !stop2.load(Ordering::Acquire) {
                            let d = remaining.min(slice);
                            std::thread::sleep(d);
                            remaining = remaining.saturating_sub(d);
                        }
                    }
                }
            })
            .expect("failed to spawn recycler thread");
        Recycler {
            stop,
            passes,
            handle: Some(handle),
        }
    }

    /// Number of cleanup passes completed so far.
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Request the thread to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Recycler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for Recycler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recycler")
            .field("passes", &self.passes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cleanup_repeatedly_until_stopped() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let r = Recycler::spawn(Duration::from_millis(1), move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(100));
        r.stop();
        let n = counter.load(Ordering::Relaxed);
        assert!(n > 1, "cleanup should have run multiple times (ran {n})");
    }

    #[test]
    fn drop_stops_the_thread() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        {
            let _r = Recycler::spawn(Duration::ZERO, move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(20));
        }
        let after_drop = counter.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(counter.load(Ordering::Relaxed), after_drop);
    }

    #[test]
    fn zero_delay_runs_aggressively() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let r = Recycler::spawn(Duration::ZERO, move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        let n = r.passes();
        r.stop();
        assert!(n >= 10, "aggressive recycler should run many passes ({n})");
    }
}
