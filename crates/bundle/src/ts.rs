//! The global timestamp (`globalTs`) that totally orders update operations.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// The logical clock shared by all update and range-query operations of one
/// bundled data structure.
///
/// * Update operations call [`GlobalTimestamp::advance`] after preparing
///   their bundles; the returned value tags the new bundle entries.
/// * Range queries call [`GlobalTimestamp::read`] once, at their outset,
///   which is their linearization point.
///
/// # Relaxed linearizability (Appendix A)
///
/// The paper evaluates a relaxation where a thread only increments
/// `globalTs` every `T`-th update, trading snapshot freshness for lower
/// contention on the shared counter. [`GlobalTimestamp::with_threshold`]
/// builds such a clock: `threshold == 1` is the linearizable default,
/// larger values update the counter every `T` operations, and
/// `threshold == 0` stands for `T = ∞` (never increment — the most extreme
/// relaxation shown in Figure 5).
pub struct GlobalTimestamp {
    ts: CachePadded<AtomicU64>,
    threshold: u64,
    /// Per-thread `advance` call counters. With `threshold > 1` they also
    /// drive the every-`T`-th-update relaxation; with the linearizable
    /// default they are pure accounting (one relaxed add on a
    /// thread-private cache line — negligible next to the `SeqCst`
    /// `fetch_add` on the shared word). Summed by
    /// [`GlobalTimestamp::advance_calls`], which is what lets a batched
    /// front-end *prove* its clock amortization: `advance_calls` counts
    /// commit rounds while the callers count operations, so
    /// `advances / ops < 1` means several operations shared one clock
    /// advance.
    counters: Box<[CachePadded<AtomicU64>]>,
}

impl GlobalTimestamp {
    /// A linearizable clock (every update increments the timestamp).
    pub fn new(max_threads: usize) -> Self {
        Self::with_threshold(max_threads, 1)
    }

    /// A clock whose threads only increment every `threshold`-th update.
    ///
    /// `threshold == 0` means "never increment" (`T = ∞` in the paper).
    pub fn with_threshold(max_threads: usize, threshold: u64) -> Self {
        let counters = (0..max_threads.max(1))
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        GlobalTimestamp {
            ts: CachePadded::new(AtomicU64::new(0)),
            threshold,
            counters,
        }
    }

    /// The relaxation threshold `T` (1 = linearizable, 0 = never increment).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Read the current timestamp. Used by range queries to fix their
    /// snapshot (their linearization point) and by relaxed updates.
    #[inline]
    pub fn read(&self) -> u64 {
        // SeqCst: the read must be ordered after any update's fetch_add that
        // precedes it in real time, so a range query never misses an update
        // that was linearized before it started (§3.3 correctness argument).
        self.ts.load(Ordering::SeqCst)
    }

    /// Obtain the timestamp for an update operation performed by `tid`.
    ///
    /// With the linearizable default this is `fetch_add(1) + 1`
    /// (Algorithm 1, line 4). With a relaxation threshold the shared counter
    /// is only bumped every `T`-th call from this thread; other calls reuse
    /// the current value, which weakens the freshness of range queries but
    /// never their internal consistency (bundle entries remain sorted).
    #[inline]
    pub fn advance(&self, tid: usize) -> u64 {
        match self.threshold {
            1 => {
                self.counters[tid].fetch_add(1, Ordering::Relaxed);
                self.ts.fetch_add(1, Ordering::SeqCst) + 1
            }
            0 => {
                self.counters[tid].fetch_add(1, Ordering::Relaxed);
                self.ts.load(Ordering::SeqCst)
            }
            t => {
                let c = self.counters[tid].fetch_add(1, Ordering::Relaxed) + 1;
                if c.is_multiple_of(t) {
                    self.ts.fetch_add(1, Ordering::SeqCst) + 1
                } else {
                    self.ts.load(Ordering::SeqCst)
                }
            }
        }
    }

    /// Total number of [`GlobalTimestamp::advance`] calls made so far, over
    /// all threads (monotonic; each call counted whether or not it bumped
    /// the shared counter).
    ///
    /// With the linearizable default every single-operation commit calls
    /// `advance` exactly once, so `advance_calls / operations == 1`; a
    /// group-commit front-end that publishes a whole batch under one
    /// timestamp drives the ratio *below* one — this counter is how that
    /// amortization is measured rather than assumed.
    #[must_use]
    pub fn advance_calls(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for GlobalTimestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalTimestamp")
            .field("value", &self.read())
            .field("threshold", &self.threshold)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn linearizable_clock_increments_every_advance() {
        let ts = GlobalTimestamp::new(2);
        assert_eq!(ts.read(), 0);
        assert_eq!(ts.advance(0), 1);
        assert_eq!(ts.advance(1), 2);
        assert_eq!(ts.read(), 2);
    }

    #[test]
    fn relaxed_clock_increments_every_t_updates() {
        let ts = GlobalTimestamp::with_threshold(1, 5);
        let mut increments = 0;
        let mut last = 0;
        for _ in 0..25 {
            let v = ts.advance(0);
            if v > last {
                increments += 1;
                last = v;
            }
        }
        assert_eq!(increments, 5, "25 updates with T=5 => 5 increments");
        assert_eq!(ts.read(), 5);
    }

    #[test]
    fn infinite_threshold_never_increments() {
        let ts = GlobalTimestamp::with_threshold(1, 0);
        for _ in 0..100 {
            assert_eq!(ts.advance(0), 0);
        }
        assert_eq!(ts.read(), 0);
    }

    #[test]
    fn advances_are_unique_under_contention() {
        let ts = Arc::new(GlobalTimestamp::new(4));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let ts = Arc::clone(&ts);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| ts.advance(tid)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every linearizable advance is unique");
        assert_eq!(ts.read(), 4000);
    }

    #[test]
    fn advance_calls_count_every_call_at_every_threshold() {
        for threshold in [1u64, 0, 5] {
            let ts = GlobalTimestamp::with_threshold(2, threshold);
            assert_eq!(ts.advance_calls(), 0);
            for _ in 0..7 {
                ts.advance(0);
            }
            for _ in 0..4 {
                ts.advance(1);
            }
            assert_eq!(
                ts.advance_calls(),
                11,
                "threshold {threshold}: calls are counted even when the \
                 shared word is not bumped"
            );
        }
    }

    #[test]
    fn monotonic_reads() {
        let ts = Arc::new(GlobalTimestamp::new(2));
        let reader = {
            let ts = Arc::clone(&ts);
            std::thread::spawn(move || {
                let mut prev = 0;
                for _ in 0..10_000 {
                    let v = ts.read();
                    assert!(v >= prev);
                    prev = v;
                }
            })
        };
        for _ in 0..5_000 {
            ts.advance(0);
        }
        reader.join().unwrap();
    }
}
