//! The bundled lazy linked list (§4).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use bundle::api::{ConcurrentSet, RangeQuerySet};
use bundle::{
    linearize_update, Bundle, Conflict, CursorStats, GlobalTimestamp, PrepareCursor, Recycler,
    RqContext, RqTracker, StagedOutcomes, TwoPhaseState, TxnValidateError,
};
use ebr::{Collector, Guard, ReclaimMode};

/// A node of the bundled lazy list (Listing 2 of the paper).
///
/// `next` is the paper's `newestNextPtr`: the link value used by all
/// primitive operations and by the entry phase of range queries. `bundle`
/// records the history of that link for in-range snapshot traversals.
struct Node<K, V> {
    key: K,
    val: Option<V>,
    lock: Mutex<()>,
    marked: AtomicBool,
    next: AtomicPtr<Node<K, V>>,
    bundle: Bundle<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
            bundle: Bundle::new(),
        }))
    }
}

/// Lazy sorted linked list with bundled references and linearizable range
/// queries.
///
/// * `insert` / `remove`: fine-grained locking with optimistic traversal and
///   post-lock validation, exactly as in the original lazy list; the only
///   addition is the `LinearizeUpdateOperation` call that maintains the
///   bundles (Algorithm 4).
/// * `contains` / `get`: wait-free, never touch bundles.
/// * `range_query`: linearized at its start, traverses the minimal number of
///   nodes in the range through bundle dereferences (Algorithm 3).
///
/// Keys are `Copy + Ord + Default` (the `Default` value is only used for the
/// two sentinel nodes and never compared); values are `Clone`.
pub struct BundledLazyList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    /// Possibly shared with other structures (see [`RqContext`]); a list
    /// built through [`Self::new`] owns a private clock, matching the paper.
    clock: Arc<GlobalTimestamp>,
    tracker: Arc<RqTracker>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for BundledLazyList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for BundledLazyList<K, V> {}

impl<K, V> BundledLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a list supporting `max_threads` registered threads, freeing
    /// removed nodes through EBR.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a list with an explicit reclamation mode. `ReclaimMode::Leaky`
    /// matches the paper's primary experimental configuration (no memory is
    /// ever freed while the structure is live).
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        Self::with_context(max_threads, mode, &RqContext::new(max_threads))
    }

    /// Create a list ordering its updates through a possibly *shared*
    /// linearization context.
    ///
    /// Structures built from clones of the same [`RqContext`] totally order
    /// their updates on one clock, so a caller that fixes a snapshot
    /// timestamp once can traverse all of them atomically with
    /// [`Self::range_query_at`] — the basis of the sharded store's
    /// cross-shard linearizable range queries.
    pub fn with_context(max_threads: usize, mode: ReclaimMode, ctx: &RqContext) -> Self {
        let tail = Node::new(K::default(), None);
        let head = Node::new(K::default(), None);
        unsafe {
            (*head).next.store(tail, Ordering::Release);
            // The initial link is timestamped with the initial globalTs (0),
            // mirroring Figure 1's construction.
            (*head).bundle.init(tail, 0);
        }
        BundledLazyList {
            head,
            tail,
            clock: Arc::clone(ctx.clock()),
            tracker: Arc::clone(ctx.tracker()),
            collector: Collector::new(max_threads, mode),
        }
    }

    /// Create a list whose global timestamp only advances every `t`-th
    /// update per thread (the Appendix A relaxation; `t = 0` means never).
    pub fn with_relaxation(max_threads: usize, t: u64) -> Self {
        Self::with_context(
            max_threads,
            ReclaimMode::Reclaim,
            &RqContext::with_threshold(max_threads, t),
        )
    }

    /// The structure's epoch collector (for diagnostics and tests).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The structure's global timestamp (for diagnostics and tests).
    pub fn clock(&self) -> &GlobalTimestamp {
        &self.clock
    }

    /// A handle to the linearization context this list uses (shared with
    /// every other structure built from the same context).
    pub fn context(&self) -> RqContext {
        RqContext::from_parts(Arc::clone(&self.clock), Arc::clone(&self.tracker))
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    /// Wait-free traversal to the first node with `key >= target` and its
    /// predecessor, using only the newest pointers.
    fn traverse(&self, target: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        self.traverse_from(self.head, target)
    }

    /// [`Self::traverse`] resuming from `start` instead of the head
    /// sentinel. `start` must be a node (or the head) whose key precedes
    /// `target` and that is reachable under the caller's EBR pin; if it
    /// was concurrently unlinked the walk still lands in the live list
    /// (an unlinked node's forward pointer is never cleared), and any
    /// resulting stale position is caught by the caller's under-lock
    /// validation.
    fn traverse_from(
        &self,
        start: *mut Node<K, V>,
        target: &K,
    ) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut pred = start;
        let mut curr = unsafe { &*pred }.next.load(Ordering::Acquire);
        while curr != self.tail && unsafe { &*curr }.key < *target {
            pred = curr;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }
        (pred, curr)
    }

    fn validate(&self, pred: *mut Node<K, V>, curr: *mut Node<K, V>) -> bool {
        let p = unsafe { &*pred };
        !p.marked.load(Ordering::Acquire) && p.next.load(Ordering::Acquire) == curr
    }

    /// Total number of bundle entries across all reachable nodes
    /// (diagnostic; used by the space-overhead tests and the Table 1
    /// experiment).
    pub fn bundle_entries(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = self.head;
        while !curr.is_null() {
            let node = unsafe { &*curr };
            n += node.bundle.len();
            if curr == self.tail {
                break;
            }
            curr = node.next.load(Ordering::Acquire);
        }
        n
    }

    /// One cleanup pass over all reachable bundles: retires every entry that
    /// is no longer needed by the oldest active range query (Appendix B,
    /// "Freeing Bundle Entries"). Intended to be driven by a
    /// [`bundle::Recycler`] background thread; see [`Self::spawn_recycler`].
    ///
    /// `tid` must be a thread slot reserved for the cleanup thread.
    pub fn cleanup_bundles(&self, tid: usize) -> usize {
        let guard = self.pin(tid);
        let oldest = self.tracker.oldest_active(self.clock.read());
        let mut reclaimed = 0;
        let mut curr = self.head;
        while !curr.is_null() && curr != self.tail {
            let node = unsafe { &*curr };
            reclaimed += node.bundle.reclaim_up_to(oldest, &guard);
            curr = node.next.load(Ordering::Acquire);
        }
        self.collector.try_advance();
        reclaimed
    }

    /// Spawn a background recycler running [`Self::cleanup_bundles`] every
    /// `delay` using thread slot `tid`. The structure must outlive the
    /// recycler; this is enforced by requiring `self` in an `Arc`.
    pub fn spawn_recycler(self: &std::sync::Arc<Self>, tid: usize, delay: Duration) -> Recycler
    where
        K: 'static,
        V: 'static,
    {
        let list = std::sync::Arc::clone(self);
        Recycler::spawn(delay, move || {
            list.cleanup_bundles(tid);
        })
    }

    /// One optimistic attempt to collect the snapshot at `ts`: traverse the
    /// newest pointers up to the range, then hop strictly through bundles.
    ///
    /// `None` means the optimistic entry phase landed on a node created
    /// after the snapshot (Algorithm 3, line 7) and the caller must retry.
    /// The caller holds the EBR guard. When `nodes` is supplied, the
    /// address of every collected node is recorded alongside (the
    /// read-write transaction read set; see [`Self::txn_range_read`]).
    fn try_collect_at(
        &self,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut nodes: Option<&mut Vec<(K, usize)>>,
    ) -> Option<usize> {
        out.clear();
        if let Some(ns) = nodes.as_deref_mut() {
            ns.clear();
        }
        // Phase 1 (GetFirstNodeInRange, first half): optimistic traversal
        // over the newest pointers up to the node preceding the range.
        let mut pred = self.head;
        let mut curr = unsafe { &*pred }.next.load(Ordering::Acquire);
        while curr != self.tail && unsafe { &*curr }.key < *low {
            pred = curr;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }

        // Phase 2: enter the range strictly through bundles.
        let mut node = unsafe { &*pred }.bundle.dereference(ts)?;
        // Skip nodes below the range (possible when nodes were removed
        // after the snapshot was fixed).
        while node != self.tail && unsafe { &*node }.key < *low {
            node = unsafe { &*node }.bundle.dereference(ts)?;
        }
        // Collect the snapshot (GetNext): every hop goes through the
        // bundle, so only nodes belonging to the snapshot are visited.
        while node != self.tail && unsafe { &*node }.key <= *high {
            let n = unsafe { &*node };
            out.push((n.key, n.val.clone().expect("data node has a value")));
            if let Some(ns) = nodes.as_deref_mut() {
                ns.push((n.key, node as usize));
            }
            node = n.bundle.dereference(ts)?;
        }
        Some(out.len())
    }

    /// Guaranteed snapshot collection at `ts`: walk from the head sentinel
    /// strictly through bundles. Never restarts — every node reachable
    /// through bundle hops at `ts` belongs to the snapshot, and the head's
    /// bundle always has a satisfying entry (it is initialized at timestamp
    /// 0 and cleanup keeps the entry the oldest announced snapshot needs).
    fn collect_snapshot_at(
        &self,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        mut nodes: Option<&mut Vec<(K, usize)>>,
    ) -> usize {
        out.clear();
        if let Some(ns) = nodes.as_deref_mut() {
            ns.clear();
        }
        let mut node = unsafe { &*self.head }
            .bundle
            .dereference(ts)
            .expect("head bundle must satisfy an announced snapshot");
        while node != self.tail && unsafe { &*node }.key < *low {
            node = unsafe { &*node }
                .bundle
                .dereference(ts)
                .expect("snapshot path must stay satisfiable");
        }
        while node != self.tail && unsafe { &*node }.key <= *high {
            let n = unsafe { &*node };
            out.push((n.key, n.val.clone().expect("data node has a value")));
            if let Some(ns) = nodes.as_deref_mut() {
                ns.push((n.key, node as usize));
            }
            node = n
                .bundle
                .dereference(ts)
                .expect("snapshot path must stay satisfiable");
        }
        out.len()
    }

    /// Range query at a *caller-fixed* snapshot timestamp.
    ///
    /// Used by multi-structure callers (the sharded store): read the shared
    /// clock once, announce it in the shared tracker, then call this on
    /// every structure — together the results form one atomic snapshot.
    ///
    /// Contract: `ts` must be announced in this structure's [`RqTracker`]
    /// (e.g. via [`bundle::RqContext::start_rq`]) for the whole call, so
    /// bundle cleanup cannot reclaim entries the traversal needs; `ts` must
    /// also not exceed the shared clock's current value.
    pub fn range_query_at(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
    ) -> usize {
        let _guard = self.pin(tid);
        // A few optimistic attempts first: they enter the range directly.
        // Unlike `range_query` the timestamp cannot be refreshed, so under
        // sustained churn near the range boundary fall back to the
        // bundle-only walk, which always succeeds.
        for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
            if let Some(n) = self.try_collect_at(ts, low, high, out, None) {
                return n;
            }
        }
        self.collect_snapshot_at(ts, low, high, out, None)
    }

    /// Transactional range read: collect `low..=high` as of snapshot `ts`
    /// exactly like [`Self::range_query_at`], additionally recording each
    /// collected node's address into `nodes` — the per-transaction **read
    /// set**. At commit, [`Self::txn_validate`] re-locates the range in
    /// the live structure under the transaction's locks and compares node
    /// identities, so any intervening commit on a read key (or a phantom
    /// inserted into the range) is detected. Nodes are immutable once
    /// created, so node identity doubles as value identity.
    ///
    /// Same contract as `range_query_at`: `ts` must be announced in the
    /// tracker for the whole read-to-commit window (the transaction's read
    /// lease) and the caller must hold an EBR pin on this structure from
    /// before the lease until validation, so the recorded addresses stay
    /// comparable (no reuse).
    pub fn txn_range_read(
        &self,
        tid: usize,
        ts: u64,
        low: &K,
        high: &K,
        out: &mut Vec<(K, V)>,
        nodes: &mut Vec<(K, usize)>,
    ) -> usize {
        let _guard = self.pin(tid);
        for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
            if let Some(n) = self.try_collect_at(ts, low, high, out, Some(nodes)) {
                return n;
            }
        }
        self.collect_snapshot_at(ts, low, high, out, Some(nodes))
    }

    /// Transactional point read: [`Self::txn_range_read`] over the
    /// degenerate range `[key, key]`, returning the value.
    pub fn txn_read(&self, tid: usize, ts: u64, key: &K, nodes: &mut Vec<(K, usize)>) -> Option<V> {
        let mut out = Vec::with_capacity(1);
        self.txn_range_read(tid, ts, key, key, &mut out, nodes);
        out.pop().map(|(_, v)| v)
    }
}

/// Optimistic entry attempts a fixed-timestamp range query makes before
/// falling back to the guaranteed bundle-only traversal.
const MAX_OPTIMISTIC_ATTEMPTS: usize = 3;

/// Accumulated two-phase state of one transaction's writes on this list:
/// the shared lock/pending bookkeeping ([`bundle::TwoPhaseState`]) plus
/// the list-specific undo log that reverts eager structural changes on
/// abort.
///
/// Created by [`BundledLazyList::txn_begin`]; populated by the prepare
/// cursor's staging seeks; consumed by exactly one of
/// `txn_finalize` (with the transaction's single commit timestamp) or
/// `txn_abort`. Dropping a non-empty token without consuming it leaks the
/// locks and wedges the bundles — the store layer guarantees consumption.
pub struct ShardTxn<K, V> {
    core: TwoPhaseState<Node<K, V>>,
    /// Eager structural changes, reverted in reverse order on abort.
    undo: Vec<LazyUndo<K, V>>,
    /// Per-key pre/post images of the staged writes, consumed by
    /// [`BundledLazyList::txn_validate`] to reconcile the transaction's
    /// own eager changes with its recorded reads.
    staged: StagedOutcomes<K>,
}

enum LazyUndo<K, V> {
    /// A staged insert physically linked `node` after `pred` (whose next
    /// previously was `prev_next`).
    Link {
        pred: *mut Node<K, V>,
        node: *mut Node<K, V>,
        prev_next: *mut Node<K, V>,
    },
    /// A staged remove marked and unlinked `curr` (previously
    /// `pred.next`).
    Unlink {
        pred: *mut Node<K, V>,
        curr: *mut Node<K, V>,
    },
}

impl<K, V> ShardTxn<K, V> {
    /// Number of staged write operations.
    #[must_use]
    pub fn staged_ops(&self) -> usize {
        self.undo.len()
    }

    /// `true` when nothing has been staged or pinned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty() && self.core.is_empty()
    }
}

impl<K, V> BundledLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Begin accumulating two-phase writes for thread `tid`.
    pub fn txn_begin(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::new(),
        }
    }

    /// [`txn_begin`](Self::txn_begin) for a **write-only** pipeline: the
    /// transaction has no read set, so no validate phase will run and the
    /// per-key pre/post images are not recorded (one map insert saved per
    /// staged op — group commits stage hundreds of ops per token, so the
    /// bookkeeping nothing reads is worth skipping). Calling
    /// [`txn_validate`](Self::txn_validate) on such a token is a contract
    /// violation (debug-asserted in `StagedOutcomes`).
    pub fn txn_begin_write_only(&self, tid: usize) -> ShardTxn<K, V> {
        ShardTxn {
            core: TwoPhaseState::new(tid),
            undo: Vec::new(),
            staged: StagedOutcomes::disabled(),
        }
    }

    /// Acquire `node`'s lock for the transaction unless it is already
    /// held; `Ok(true)` means newly acquired (see
    /// [`TwoPhaseState::lock`]).
    fn txn_lock(&self, txn: &mut ShardTxn<K, V>, node: *mut Node<K, V>) -> Result<bool, Conflict> {
        // Safety: `node` is reachable (caller pins EBR) and a locked node
        // is never retired — every remover must lock its victim first.
        unsafe { txn.core.lock(node, &(*node).lock) }
    }

    /// Open a [`ShardCursor`] over `txn`: the positional batch-staging
    /// surface (see [`bundle::PrepareCursor`]). The cursor retains the
    /// last located position — a node the transaction touched (and
    /// usually holds locked) — and resumes the next seek from it when the
    /// target key lies beyond it, so a key-sorted batch pays one head
    /// walk plus short forward hops instead of a full traversal per op.
    pub fn txn_cursor(&self, txn: ShardTxn<K, V>) -> ShardCursor<'_, K, V> {
        // The cursor-lifetime pin is what keeps every retained frontier
        // pointer allocated between seeks (pins are reentrant, so the
        // prepare internals nest freely).
        let guard = self.pin(txn.core.tid());
        ShardCursor {
            list: self,
            txn,
            _guard: guard,
            hint: ptr::null_mut(),
            stats: CursorStats::default(),
        }
    }

    /// Validate one recorded read range of a read-write transaction and
    /// **pin it until commit**. Must run after every staged write of the
    /// transaction on this structure, under the store's shard intent lock.
    ///
    /// The pass re-walks `low..=high` over the newest pointers, locking
    /// the range's gap predecessor and every in-range node (bounded
    /// `try_lock`, so contention surfaces as
    /// [`TxnValidateError::Conflict`] and the store retries), then
    /// compares the found `(key, node)` list against what the read
    /// recorded — adjusted for the transaction's own staged writes via its
    /// [`StagedOutcomes`]. A mismatch means a foreign update committed
    /// inside the range since the leased read timestamp:
    /// [`TxnValidateError::Invalidated`].
    ///
    /// Holding the acquired locks until finalize/abort is what makes the
    /// reads serializable at the commit timestamp: an insert into any
    /// in-range gap needs one of the locked nodes as predecessor, and a
    /// remove needs its victim's lock — both block until the transaction
    /// finishes, exactly like the no-op outcome pinning of the write path.
    pub fn txn_validate(
        &self,
        txn: &mut ShardTxn<K, V>,
        low: &K,
        high: &K,
        recorded: &[(K, usize)],
    ) -> Result<(), TxnValidateError> {
        let expected = txn.staged.expected_now(low, high, recorded)?;
        let _guard = self.pin(txn.core.tid());
        bundle::validate_chain(
            &mut txn.core,
            &expected,
            high,
            self.tail,
            || self.traverse(low),
            // Safety: nodes produced by traverse/step are reachable under
            // the EBR pin above; a locked node is never retired.
            |core, node| unsafe { core.lock(node, &(*node).lock) },
            |pred, first| self.validate(pred, first),
            |node| unsafe { &*node }.key,
            |prev, curr| {
                let c = unsafe { &*curr };
                if c.marked.load(Ordering::Acquire)
                    || unsafe { &*prev }.next.load(Ordering::Acquire) != curr
                {
                    None
                } else {
                    Some((c.key, c.next.load(Ordering::Acquire)))
                }
            },
        )
    }

    /// Commit: publish every staged bundle entry with the transaction's
    /// single timestamp, release the locks, retire removed nodes.
    pub fn txn_finalize(&self, txn: ShardTxn<K, V>, ts: u64) {
        let tid = txn.core.tid();
        let victims = txn.core.finalize(ts);
        let guard = self.pin(tid);
        for v in victims {
            // Safety: `v` was unlinked by this transaction while holding
            // the relevant locks; EBR defers the free past concurrent
            // readers.
            unsafe { guard.retire(v) };
        }
    }

    /// Abort: revert every eager structural change (reverse order), then
    /// neutralize the pending bundle entries, release the locks, and
    /// retire the nodes the transaction created.
    pub fn txn_abort(&self, txn: ShardTxn<K, V>) {
        let ShardTxn { core, mut undo, .. } = txn;
        let tid = core.tid();
        while let Some(op) = undo.pop() {
            match op {
                LazyUndo::Link {
                    pred,
                    node,
                    prev_next,
                } => {
                    // Mark the stillborn node so a primitive operation
                    // blocked on its lock re-validates and retries.
                    unsafe { &*node }.marked.store(true, Ordering::SeqCst);
                    unsafe { &*pred }.next.store(prev_next, Ordering::SeqCst);
                }
                LazyUndo::Unlink { pred, curr } => {
                    unsafe { &*curr }.marked.store(false, Ordering::SeqCst);
                    unsafe { &*pred }.next.store(curr, Ordering::SeqCst);
                }
            }
        }
        // Only after the physical state is fully reverted: release the
        // snapshot readers spinning on our pending entries (entries with
        // prior history become neutralized duplicates; first entries of
        // created, now unreachable, nodes become tombstones).
        let created = core.abort();
        let guard = self.pin(tid);
        for n in created {
            // Safety: the node was unlinked above (or never committed to
            // a reachable state); EBR defers the free.
            unsafe { guard.retire(n) };
        }
    }
}

/// A prepare cursor over one [`ShardTxn`] (see
/// [`BundledLazyList::txn_cursor`] and [`bundle::PrepareCursor`]).
///
/// The retained frontier is a single node — the last position a seek
/// located (the staged node, the no-op pin, or the gap predecessor).
/// After a staged write the frontier node is one the transaction holds
/// locked, so it can neither move nor die; after a [`Self::seek_read`]
/// it is an unlocked *hint*, re-checked (unmarked) before each resume
/// and backstopped by the under-lock validation every prepare performs.
/// A seek for a key at or behind the frontier falls back to a head walk.
pub struct ShardCursor<'a, K, V> {
    list: &'a BundledLazyList<K, V>,
    txn: ShardTxn<K, V>,
    /// Keeps every retained pointer allocated between seeks.
    _guard: Guard<'a>,
    /// Last located position (never the head sentinel — the head resume
    /// is exactly a root descent; null = no frontier yet).
    hint: *mut Node<K, V>,
    stats: CursorStats,
}

impl<'a, K, V> ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// The frontier node to resume from for `target`, if the retained
    /// position is usable: strictly before the target and not unlinked.
    /// (An unmarked node is still reachable — marking happens before
    /// unlinking, under the node's lock.)
    fn resume_point(&self, target: &K) -> Option<*mut Node<K, V>> {
        let h = self.hint;
        if h.is_null() {
            return None;
        }
        let node = unsafe { &*h };
        if !node.marked.load(Ordering::Acquire) && node.key < *target {
            Some(h)
        } else {
            None
        }
    }

    /// Retain `node` as the frontier (the head sentinel degenerates to
    /// "no frontier": resuming from it is a root descent anyway).
    fn retain(&mut self, node: *mut Node<K, V>) {
        self.hint = if node == self.list.head {
            ptr::null_mut()
        } else {
            node
        };
    }

    /// Locate `target`, resuming from the frontier when possible. The
    /// hint is consumed: a retry within one seek (torn validation)
    /// restarts from the head.
    fn locate(
        &mut self,
        target: &K,
        resume: &mut Option<*mut Node<K, V>>,
    ) -> (*mut Node<K, V>, *mut Node<K, V>) {
        match resume.take() {
            Some(start) => {
                self.stats.hinted += 1;
                self.list.traverse_from(start, target)
            }
            None => {
                self.stats.descents += 1;
                self.list.traverse(target)
            }
        }
    }

    /// Stage an insert at the sought position: the structural change is
    /// applied eagerly (so later keys of the same transaction observe it)
    /// but every affected bundle entry stays *pending* until the
    /// transaction's single commit timestamp finalizes it — snapshot
    /// reads therefore see either all of the transaction's writes or
    /// none. `Ok(false)` = key already present (the present node stays
    /// locked, pinning the no-op outcome until commit).
    pub fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        let list = self.list;
        let mut resume = self.resume_point(&key);
        loop {
            let (pred, curr) = self.locate(&key, &mut resume);
            let txn = &mut self.txn;
            if curr != list.tail && unsafe { &*curr }.key == key {
                // Pin the no-op: hold the present node's lock until
                // commit. A marked node's remove has already linearized
                // (mark and unlink share the remover's critical section,
                // which requires this very lock) — retry and miss it.
                let newly = list.txn_lock(txn, curr)?;
                if unsafe { &*curr }.marked.load(Ordering::Acquire) {
                    if newly {
                        txn.core.unlock_latest(1);
                        continue;
                    }
                    return Err(Conflict);
                }
                txn.staged
                    .record(key, Some(curr as usize), Some(curr as usize));
                self.retain(curr);
                return Ok(false);
            }
            let newly = list.txn_lock(txn, pred)?;
            if !list.validate(pred, curr) {
                if newly {
                    txn.core.unlock_latest(1);
                    continue;
                }
                // A node we already hold locked cannot be invalidated by
                // anyone else; treat the impossible as a conflict so the
                // transaction retries from scratch rather than spinning.
                return Err(Conflict);
            }
            let pred_ref = unsafe { &*pred };
            let node = Node::new(key, Some(value));
            let node_ref = unsafe { &*node };
            // Hold the new node's lock until commit/abort: any primitive
            // operation that would adopt it as a predecessor blocks on the
            // lock instead of spinning on our pending bundle entry (which
            // we might abort) — and cannot link behind a node we may undo.
            let node_guard: MutexGuard<'static, ()> = node_ref.lock.lock();
            txn.core.push_lock(node, node_guard);
            node_ref.next.store(curr, Ordering::Relaxed);
            txn.core.prepare_bundle(&node_ref.bundle, curr);
            txn.core.prepare_bundle(&pred_ref.bundle, node);
            // Eager physical link (the op's linearization effect); commit
            // order is still decided solely by the bundle timestamps.
            pred_ref.next.store(node, Ordering::SeqCst);
            txn.core.add_created(node);
            txn.staged.record(key, None, Some(node as usize));
            txn.undo.push(LazyUndo::Link {
                pred,
                node,
                prev_next: curr,
            });
            self.retain(node);
            return Ok(true);
        }
    }

    /// Stage a remove at the sought position. `Ok(false)` = key absent;
    /// the gap (predecessor whose successor skips past `key`) stays
    /// locked by the transaction, so the no-op outcome still holds at the
    /// commit timestamp (nobody can insert the key before the transaction
    /// finishes).
    pub fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        let list = self.list;
        let mut resume = self.resume_point(key);
        loop {
            let (pred, curr) = self.locate(key, &mut resume);
            let txn = &mut self.txn;
            if curr == list.tail || unsafe { &*curr }.key != *key {
                // Pin the no-op: hold the gap's predecessor until commit.
                let newly = list.txn_lock(txn, pred)?;
                if !list.validate(pred, curr) {
                    if newly {
                        txn.core.unlock_latest(1);
                        continue;
                    }
                    return Err(Conflict);
                }
                txn.staged.record(*key, None, None);
                self.retain(pred);
                return Ok(false);
            }
            let newly_pred = list.txn_lock(txn, pred)?;
            let newly_curr = match list.txn_lock(txn, curr) {
                Ok(n) => n,
                Err(c) => {
                    if newly_pred {
                        txn.core.unlock_latest(1);
                    }
                    return Err(c);
                }
            };
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            if !list.validate(pred, curr) || curr_ref.marked.load(Ordering::Acquire) {
                txn.core
                    .unlock_latest(usize::from(newly_curr) + usize::from(newly_pred));
                if !newly_pred && !newly_curr {
                    return Err(Conflict);
                }
                continue;
            }
            let next = curr_ref.next.load(Ordering::Acquire);
            txn.core.prepare_bundle(&pred_ref.bundle, next);
            // Eager logical delete + physical unlink.
            curr_ref.marked.store(true, Ordering::SeqCst);
            pred_ref.next.store(next, Ordering::SeqCst);
            txn.core.add_victim(curr);
            txn.staged.record(*key, Some(curr as usize), None);
            txn.undo.push(LazyUndo::Unlink { pred, curr });
            self.retain(pred);
            return Ok(true);
        }
    }

    /// Read `key`'s current value (newest pointers — the transaction's
    /// own eager writes are visible) through the frontier, retaining the
    /// located position as an *unlocked* hint. Takes no locks and stages
    /// nothing; linearizes at the frontier validity check (an unmarked
    /// resume point is still reachable at that instant).
    pub fn seek_read(&mut self, key: &K) -> Option<V> {
        let mut resume = self.resume_point(key);
        let (pred, curr) = self.locate(key, &mut resume);
        if curr != self.list.tail && unsafe { &*curr }.key == *key {
            let c = unsafe { &*curr };
            if !c.marked.load(Ordering::Acquire) {
                self.retain(curr);
                return c.val.clone();
            }
        }
        self.retain(pred);
        None
    }

    /// Hinted-resume vs root-descent counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CursorStats {
        self.stats
    }

    /// Give the transaction token back (dropping the frontier and the
    /// cursor's EBR pin); consume it with [`BundledLazyList::txn_finalize`]
    /// or [`BundledLazyList::txn_abort`].
    #[must_use]
    pub fn finish(self) -> ShardTxn<K, V> {
        self.txn
    }
}

impl<'a, K, V> PrepareCursor<K, V> for ShardCursor<'a, K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    type Txn = ShardTxn<K, V>;

    fn seek_prepare_put(&mut self, key: K, value: V) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_put(self, key, value)
    }

    fn seek_prepare_remove(&mut self, key: &K) -> Result<bool, Conflict> {
        ShardCursor::seek_prepare_remove(self, key)
    }

    fn seek_read(&mut self, key: &K) -> Option<V> {
        ShardCursor::seek_read(self, key)
    }

    fn stats(&self) -> CursorStats {
        ShardCursor::stats(self)
    }

    fn finish(self) -> ShardTxn<K, V> {
        ShardCursor::finish(self)
    }
}

impl<'a, K, V> std::fmt::Debug for ShardCursor<'a, K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCursor")
            .field("stats", &self.stats)
            .finish()
    }
}

impl<K, V> ConcurrentSet<K, V> for BundledLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let guard = self.pin(tid);
        loop {
            let (pred, curr) = self.traverse(&key);
            let pred_ref = unsafe { &*pred };
            let _lock = pred_ref.lock.lock();
            if !self.validate(pred, curr) {
                continue;
            }
            if curr != self.tail && unsafe { &*curr }.key == key {
                return false;
            }
            let node = Node::new(key, Some(value));
            unsafe { &*node }.next.store(curr, Ordering::Relaxed);
            // Bundles affected by an insertion: the new node's own bundle
            // (pointing at its successor) and the predecessor's bundle
            // (pointing at the new node) — Algorithm 4, lines 10-12.
            let node_ref = unsafe { &*node };
            let bundles = [(&node_ref.bundle, curr), (&pred_ref.bundle, node)];
            linearize_update(&self.clock, tid, &bundles, || {
                // Linearization point: the new node becomes reachable.
                pred_ref.next.store(node, Ordering::SeqCst);
            });
            drop(guard);
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        loop {
            let (pred, curr) = self.traverse(key);
            if curr == self.tail || unsafe { &*curr }.key != *key {
                return false;
            }
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            // Locks are taken in ascending key order (pred.key < curr.key),
            // the same order every other multi-lock operation uses, so the
            // list cannot deadlock.
            let _pred_lock = pred_ref.lock.lock();
            let _curr_lock = curr_ref.lock.lock();
            if !self.validate(pred, curr) || curr_ref.marked.load(Ordering::Acquire) {
                continue;
            }
            let next = curr_ref.next.load(Ordering::Acquire);
            // Only the predecessor's bundle changes: the removed node's
            // bundle keeps describing the physical state just before the
            // removal (§4).
            let bundles = [(&pred_ref.bundle, next)];
            linearize_update(&self.clock, tid, &bundles, || {
                // Linearization point: the logical delete. The physical
                // unlink shares the critical section (§4).
                curr_ref.marked.store(true, Ordering::SeqCst);
                pred_ref.next.store(next, Ordering::SeqCst);
            });
            // Safety: `curr` is unlinked; EBR defers the free past any
            // operation that may still hold a reference.
            unsafe { guard.retire(curr) };
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let (_, curr) = self.traverse(key);
        curr != self.tail
            && unsafe { &*curr }.key == *key
            && !unsafe { &*curr }.marked.load(Ordering::Acquire)
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let (_, curr) = self.traverse(key);
        if curr != self.tail
            && unsafe { &*curr }.key == *key
            && !unsafe { &*curr }.marked.load(Ordering::Acquire)
        {
            unsafe { &*curr }.val.clone()
        } else {
            None
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = unsafe { &*self.head }.next.load(Ordering::Acquire);
        while curr != self.tail {
            n += 1;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for BundledLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        loop {
            // Linearization point: fix the snapshot timestamp and announce
            // it for the bundle recycler. On a failed optimistic attempt
            // restart with a fresh timestamp (Algorithm 3, line 7).
            let ts = self.tracker.start(tid, &self.clock);
            let collected = self.try_collect_at(ts, low, high, out, None);
            self.tracker.finish(tid);
            if let Some(n) = collected {
                return n;
            }
        }
    }
}

impl<K, V> Drop for BundledLazyList<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every reachable node (retired nodes are
        // freed by the collector's own drop).
        let mut curr = self.head;
        while !curr.is_null() {
            let next = unsafe { &*curr }.next.load(Ordering::Relaxed);
            unsafe { drop(Box::from_raw(curr)) };
            if curr == self.tail {
                break;
            }
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type List = BundledLazyList<u64, u64>;

    #[test]
    fn empty_list_behaviour() {
        let l = List::new(1);
        assert!(!l.contains(0, &5));
        assert_eq!(l.get(0, &5), None);
        assert!(!l.remove(0, &5));
        assert_eq!(l.len(0), 0);
        assert!(l.is_empty(0));
        let mut out = Vec::new();
        assert_eq!(l.range_query(0, &0, &100, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let l = List::new(1);
        assert!(l.insert(0, 10, 100));
        assert!(l.insert(0, 5, 50));
        assert!(l.insert(0, 20, 200));
        assert!(!l.insert(0, 10, 999), "duplicate insert rejected");
        assert_eq!(l.len(0), 3);
        assert!(l.contains(0, &5));
        assert_eq!(l.get(0, &20), Some(200));
        assert!(l.remove(0, &10));
        assert!(!l.remove(0, &10));
        assert!(!l.contains(0, &10));
        assert_eq!(l.len(0), 2);
    }

    #[test]
    fn range_query_returns_sorted_range() {
        let l = List::new(1);
        for k in [40u64, 10, 30, 50, 20] {
            l.insert(0, k, k * 10);
        }
        let mut out = Vec::new();
        l.range_query(0, &15, &45, &mut out);
        assert_eq!(out, vec![(20, 200), (30, 300), (40, 400)]);
        l.range_query(0, &0, &100, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        l.range_query(0, &60, &100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn figure1_scenario_snapshots() {
        // Reproduces the Figure 1 example: insert(20), insert(30),
        // insert(10), remove(20) and checks what each snapshot would see.
        let l = List::new(1);
        l.insert(0, 20, 20);
        l.insert(0, 30, 30);
        l.insert(0, 10, 10);
        l.remove(0, &20);
        assert_eq!(l.clock().read(), 4);
        let mut out = Vec::new();
        // A range query started now (ts=4) sees {10, 30}.
        l.range_query(0, &0, &100, &mut out);
        assert_eq!(
            out.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 30]
        );
        // The historical path for ts=3 ({10,20,30}) is still present in the
        // bundles (dereference on the head bundle at ts=0 sees the tail).
        assert!(l.bundle_entries(0) > 4);
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let l = List::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..2000 {
            let k = next() % 64;
            match next() % 3 {
                0 => {
                    assert_eq!(l.insert(0, k, k), model.insert(k, k).is_none());
                }
                1 => {
                    assert_eq!(l.remove(0, &k), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(l.contains(0, &k), model.contains_key(&k));
                }
            }
        }
        assert_eq!(l.len(0), model.len());
        let mut out = Vec::new();
        l.range_query(0, &8, &40, &mut out);
        let expected: Vec<(u64, u64)> = model.range(8..=40).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_mixed_operations_preserve_integrity() {
        const THREADS: usize = 4;
        const OPS: usize = 3_000;
        let l = Arc::new(List::new(THREADS));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                let mut seed = (tid as u64 + 1).wrapping_mul(0x517cc1b727220a95);
                let mut next = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                let mut out = Vec::new();
                for _ in 0..OPS {
                    let k = next() % 256;
                    match next() % 4 {
                        0 => {
                            l.insert(tid, k, k);
                        }
                        1 => {
                            l.remove(tid, &k);
                        }
                        2 => {
                            let _ = l.contains(tid, &k);
                        }
                        _ => {
                            let lo = k.saturating_sub(32);
                            l.range_query(tid, &lo, &k, &mut out);
                            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            assert!(out.iter().all(|(x, _)| *x >= lo && *x <= k));
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Final structural sanity: sorted, no duplicates.
        let mut out = Vec::new();
        l.range_query(0, &0, &(u64::MAX - 2), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), l.len(0));
    }

    #[test]
    fn range_query_prefix_insertion_has_no_gaps() {
        // Keys are inserted by a single writer in strictly increasing order;
        // a linearizable range query must therefore always observe a
        // gap-free prefix (seeing key k implies every key < k is visible).
        const MAX: u64 = 4_000;
        let l = Arc::new(List::new(3));
        let writers: Vec<_> = (0..1)
            .map(|w| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for k in 0..MAX {
                        assert!(l.insert(w, k, k));
                    }
                })
            })
            .collect();
        let reader = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..200 {
                    l.range_query(2, &0, &MAX, &mut out);
                    // Gap-free prefix: result is exactly 0..out.len().
                    for (i, (k, _)) in out.iter().enumerate() {
                        assert_eq!(*k, i as u64, "range query observed a gap");
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(l.len(0), MAX as usize);
    }

    #[test]
    fn space_overhead_is_two_entries_per_insert() {
        // §4 "Space overhead": n inserts (no removals) produce 2n bundle
        // entries plus the initial sentinel entry.
        let l = List::new(1);
        let n = 100u64;
        for k in 0..n {
            l.insert(0, k, k);
        }
        assert_eq!(l.bundle_entries(0), (2 * n + 1) as usize);
    }

    #[test]
    fn cleanup_prunes_stale_bundle_entries() {
        let l = List::new(2);
        for k in 0..50u64 {
            l.insert(0, k, k);
        }
        // Churn on the same keys grows the bundles.
        for _ in 0..5 {
            for k in 0..50u64 {
                l.remove(0, &k);
                l.insert(0, k, k);
            }
        }
        let before = l.bundle_entries(0);
        let reclaimed = l.cleanup_bundles(1);
        let after = l.bundle_entries(0);
        assert!(reclaimed > 0, "cleanup should reclaim stale entries");
        assert_eq!(after, before - reclaimed);
        // With no active range queries, every reachable bundle can be
        // reduced to a single satisfying entry.
        assert_eq!(after, l.len(0) + 1);
        // And the structure still answers queries correctly.
        assert_eq!(l.len(0), 50);
        let mut out = Vec::new();
        l.range_query(0, &0, &49, &mut out);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn relaxed_clock_still_produces_consistent_ranges() {
        let l = BundledLazyList::<u64, u64>::with_relaxation(2, 10);
        for k in 0..100u64 {
            l.insert(0, k, k);
        }
        let mut out = Vec::new();
        l.range_query(1, &10, &20, &mut out);
        assert_eq!(out.len(), 11);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn shared_context_orders_updates_across_lists() {
        // Two lists on one context: updates interleave on one clock, and a
        // fixed-timestamp query over both sees one atomic cut.
        let ctx = bundle::RqContext::new(2);
        let a = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        let b = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        assert!(a.context().same_as(&b.context()));
        a.insert(0, 1, 1); // ts 1
        b.insert(0, 2, 2); // ts 2
        a.insert(0, 3, 3); // ts 3
        assert_eq!(ctx.read(), 3);

        // Snapshot fixed between the two `a` inserts: sees {1} and {2}.
        let ts = 2;
        let tid = 1;
        let announced = ctx.start_rq(tid);
        assert_eq!(announced, 3);
        let mut out = Vec::new();
        a.range_query_at(tid, ts, &0, &10, &mut out);
        assert_eq!(out, vec![(1, 1)], "a at ts=2 must not include ts=3 insert");
        b.range_query_at(tid, ts, &0, &10, &mut out);
        assert_eq!(out, vec![(2, 2)]);
        ctx.finish_rq(tid);
    }

    #[test]
    fn range_query_at_fallback_matches_optimistic() {
        let l = List::new(1);
        for k in 0..100u64 {
            l.insert(0, k, k * 2);
        }
        let ts = l.clock().read();
        let mut opt = Vec::new();
        let mut snap = Vec::new();
        assert_eq!(l.range_query_at(0, ts, &10, &20, &mut opt), 11);
        // The guaranteed bundle-only walk must produce the same snapshot.
        let _guard = l.pin(0);
        l.collect_snapshot_at(ts, &10, &20, &mut snap, None);
        assert_eq!(opt, snap);
        // An ancient snapshot sees the empty list.
        assert_eq!(l.range_query_at(0, 0, &0, &1000, &mut opt), 0);
    }

    #[test]
    fn txn_commit_is_atomic_under_a_fixed_snapshot() {
        let ctx = bundle::RqContext::new(2);
        let l = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        l.insert(0, 5, 5);
        l.insert(0, 50, 50);
        let before = ctx.read();

        // Stage a three-key transaction through the cursor, including two
        // adjacent keys that share a predecessor (the second merges into
        // the first's pending entry) and a remove of a pre-existing key.
        let mut cur = l.txn_cursor(l.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(10, 100), Ok(true));
        assert_eq!(cur.seek_prepare_put(11, 110), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&50), Ok(true));
        assert_eq!(cur.seek_prepare_put(5, 999), Ok(false), "no-op dup");
        assert_eq!(cur.seek_prepare_remove(&77), Ok(false), "no-op miss");
        // The ascending seeks resumed from the frontier; the two backward
        // seeks (5 and 77 after reaching 50) fell back to head walks.
        let stats = cur.stats();
        assert!(stats.hinted >= 2, "sorted seeks must resume: {stats:?}");
        let txn = cur.finish();
        assert_eq!(txn.staged_ops(), 3);
        let ts = ctx.advance(0);
        l.txn_finalize(txn, ts);

        let mut out = Vec::new();
        // Pre-commit snapshot: none of the transaction's writes.
        let announced = ctx.start_rq(1);
        assert!(announced >= ts);
        l.range_query_at(1, before, &0, &100, &mut out);
        assert_eq!(out, vec![(5, 5), (50, 50)]);
        // Commit snapshot: all of them.
        l.range_query_at(1, ts, &0, &100, &mut out);
        assert_eq!(out, vec![(5, 5), (10, 100), (11, 110)]);
        ctx.finish_rq(1);
        assert_eq!(l.len(0), 3);
    }

    #[test]
    fn txn_abort_restores_structure_and_snapshots() {
        let ctx = bundle::RqContext::new(2);
        let l = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30] {
            l.insert(0, k, k);
        }
        let clock_before = ctx.read();

        let mut cur = l.txn_cursor(l.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(15, 150), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&20), Ok(true));
        assert_eq!(cur.seek_prepare_put(16, 160), Ok(true));
        // The cursor reads its own eager writes through the frontier.
        assert_eq!(cur.seek_read(&16), Some(160));
        assert_eq!(cur.seek_read(&20), None);
        let txn = cur.finish();
        // Mid-transaction the eager changes are physically visible...
        assert!(l.contains(1, &15));
        assert!(!l.contains(1, &20));
        l.txn_abort(txn);

        // ...but after the abort everything is exactly as before.
        assert_eq!(ctx.read(), clock_before, "abort never advances the clock");
        assert!(!l.contains(0, &15));
        assert!(!l.contains(0, &16));
        assert!(l.contains(0, &20));
        assert_eq!(l.len(0), 3);
        let mut out = Vec::new();
        l.range_query(1, &0, &100, &mut out);
        assert_eq!(out, vec![(10, 10), (20, 20), (30, 30)]);
        // Fixed-timestamp reads across the aborted window agree too.
        l.range_query_at(1, clock_before, &0, &100, &mut out);
        assert_eq!(out, vec![(10, 10), (20, 20), (30, 30)]);
        // And the structure still accepts updates on the touched keys.
        assert!(l.insert(0, 15, 151));
        assert!(l.remove(0, &20));
    }

    #[test]
    fn txn_remove_of_own_staged_insert_nets_out() {
        let l = List::new(1);
        l.insert(0, 1, 1);
        let mut cur = l.txn_cursor(l.txn_begin(0));
        assert_eq!(cur.seek_prepare_put(5, 50), Ok(true));
        // Equal-key seek: the frontier is *at* 5, so this is a fallback
        // descent that must still find (and unlink) the staged node.
        assert_eq!(cur.seek_prepare_remove(&5), Ok(true));
        let ts = l.clock().advance(0);
        l.txn_finalize(cur.finish(), ts);
        assert!(!l.contains(0, &5));
        assert_eq!(l.len(0), 1);
        let mut out = Vec::new();
        l.range_query(0, &0, &10, &mut out);
        assert_eq!(out, vec![(1, 1)]);
    }

    #[test]
    fn txn_range_read_records_nodes_and_validates_when_unchanged() {
        let ctx = bundle::RqContext::new(2);
        let l = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30] {
            l.insert(0, k, k * 10);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        l.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);
        assert_eq!(out, vec![(10, 100), (20, 200), (30, 300)]);
        assert_eq!(
            nodes.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        // Point read through the same surface.
        let mut pn = Vec::new();
        assert_eq!(l.txn_read(1, lease.ts(), &20, &mut pn), Some(200));
        assert_eq!(pn.len(), 1);

        // Nothing changed: the read set validates and stays pinned.
        let mut txn = l.txn_begin(1);
        assert_eq!(l.txn_validate(&mut txn, &0, &100, &nodes), Ok(()));
        // The pinned range rejects a concurrent primitive insert only by
        // blocking; release via abort (no writes staged, pure unlock).
        l.txn_abort(txn);
        drop(lease);
    }

    #[test]
    fn txn_validate_detects_stale_reads_and_phantoms() {
        let ctx = bundle::RqContext::new(2);
        let l = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30] {
            l.insert(0, k, k);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        l.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);
        let mut empty_nodes = Vec::new();
        l.txn_range_read(1, lease.ts(), &40, &60, &mut out, &mut empty_nodes);
        assert!(empty_nodes.is_empty());
        drop(lease);

        // A foreign remove of a read key invalidates the range...
        l.remove(0, &20);
        let mut txn = l.txn_begin(1);
        assert_eq!(
            l.txn_validate(&mut txn, &0, &100, &nodes),
            Err(TxnValidateError::Invalidated)
        );
        l.txn_abort(txn);
        // ...and a phantom inserted into a read-empty range does too.
        l.insert(0, 50, 50);
        let mut txn = l.txn_begin(1);
        assert_eq!(
            l.txn_validate(&mut txn, &40, &60, &empty_nodes),
            Err(TxnValidateError::Invalidated)
        );
        l.txn_abort(txn);

        // A fresh read validates again.
        let lease = ctx.lease_read(1);
        let mut fresh = Vec::new();
        l.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut fresh);
        let mut txn = l.txn_begin(1);
        assert_eq!(l.txn_validate(&mut txn, &0, &100, &fresh), Ok(()));
        l.txn_abort(txn);
    }

    #[test]
    fn txn_validate_reconciles_own_staged_writes() {
        let ctx = bundle::RqContext::new(2);
        let l = BundledLazyList::<u64, u64>::with_context(2, ReclaimMode::Reclaim, &ctx);
        for k in [10u64, 20, 30] {
            l.insert(0, k, k);
        }
        let lease = ctx.lease_read(1);
        let mut out = Vec::new();
        let mut nodes = Vec::new();
        l.txn_range_read(1, lease.ts(), &0, &100, &mut out, &mut nodes);

        // The transaction itself removes a read key, upserts another and
        // inserts a new one — its own eager changes must not trip the
        // validation of its own reads.
        let mut cur = l.txn_cursor(l.txn_begin(1));
        assert_eq!(cur.seek_prepare_remove(&20), Ok(true));
        assert_eq!(cur.seek_prepare_remove(&30), Ok(true));
        assert_eq!(cur.seek_prepare_put(30, 999), Ok(true));
        assert_eq!(cur.seek_prepare_put(15, 150), Ok(true));
        let mut txn = cur.finish();
        assert_eq!(l.txn_validate(&mut txn, &0, &100, &nodes), Ok(()));
        let ts = ctx.advance(1);
        l.txn_finalize(txn, ts);
        drop(lease);
        let mut scan = Vec::new();
        l.range_query(0, &0, &100, &mut scan);
        assert_eq!(scan, vec![(10, 10), (15, 150), (30, 999)]);
    }

    #[test]
    fn txn_conflicts_surface_instead_of_deadlocking() {
        // A primitive writer hammers the same keys a transaction stages;
        // the transaction layer retries on Conflict. This is a smoke test
        // that the bounded try_lock path terminates.
        let l = Arc::new(List::new(3));
        for k in 0..64u64 {
            l.insert(0, k, k);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    l.remove(0, &(k % 64));
                    l.insert(0, k % 64, k);
                    k += 1;
                }
            })
        };
        for round in 0..300u64 {
            loop {
                let mut cur = l.txn_cursor(l.txn_begin(1));
                let a = cur.seek_prepare_put(100 + (round % 8), round);
                let b = a.and_then(|_| cur.seek_prepare_remove(&(round % 64)));
                let txn = cur.finish();
                match b {
                    Ok(_) => {
                        let ts = l.clock().advance(1);
                        l.txn_finalize(txn, ts);
                        break;
                    }
                    Err(Conflict) => {
                        l.txn_abort(txn);
                        std::thread::yield_now();
                    }
                }
            }
            l.remove(1, &(100 + (round % 8)));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        let mut out = Vec::new();
        l.range_query(2, &0, &200, &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn one_op_cursors_accumulate_into_one_token() {
        // A fresh cursor per op (one root descent each — the legacy
        // point-prepare discipline) must stage into the same token with
        // batch-identical outcomes.
        let l = List::new(1);
        l.insert(0, 10, 10);
        let mut txn = l.txn_begin(0);
        for (op, expect) in [
            ((Some(50u64), 5u64), true),
            ((Some(99), 10), false),
            ((None, 10), true),
            ((None, 77), false),
        ] {
            let mut cur = l.txn_cursor(txn);
            match op {
                (Some(v), k) => assert_eq!(cur.seek_prepare_put(k, v), Ok(expect)),
                (None, k) => assert_eq!(cur.seek_prepare_remove(&k), Ok(expect)),
            }
            txn = cur.finish();
        }
        assert_eq!(txn.staged_ops(), 2);
        let ts = l.clock().advance(0);
        l.txn_finalize(txn, ts);
        let mut out = Vec::new();
        l.range_query(0, &0, &100, &mut out);
        assert_eq!(out, vec![(5, 50)]);
    }

    #[test]
    fn cursor_read_hint_invalidation_falls_back_to_descent() {
        // A seek_read retains an *unlocked* frontier hint; a foreign
        // remove of that very node must force the next seek back onto a
        // head walk — and the outcome must still be exact.
        let l = List::new(2);
        for k in [10u64, 20, 30, 40] {
            l.insert(0, k, k);
        }
        let mut cur = l.txn_cursor(l.txn_begin(1));
        assert_eq!(cur.seek_read(&20), Some(20));
        let after_read = cur.stats();
        // Foreign primitive remove of the retained node (the cursor holds
        // no locks yet, so the primitive cannot deadlock against it).
        assert!(l.remove(0, &20));
        // Forward seek: the hint (node 20) is marked, so this must be a
        // fallback descent, and it must see the post-remove list.
        assert_eq!(cur.seek_prepare_put(25, 250), Ok(true));
        let after_put = cur.stats();
        assert_eq!(
            after_put.descents,
            after_read.descents + 1,
            "a marked frontier hint must force a root descent"
        );
        // Backward seek: also a descent.
        assert_eq!(cur.seek_prepare_remove(&10), Ok(true));
        assert_eq!(cur.stats().descents, after_put.descents + 1);
        let ts = l.clock().advance(1);
        l.txn_finalize(cur.finish(), ts);
        let mut out = Vec::new();
        l.range_query(0, &0, &100, &mut out);
        assert_eq!(out, vec![(25, 250), (30, 30), (40, 40)]);
    }

    #[test]
    fn leaky_mode_never_frees_nodes() {
        let l = BundledLazyList::<u64, u64>::with_mode(1, ReclaimMode::Leaky);
        for k in 0..20u64 {
            l.insert(0, k, k);
        }
        for k in 0..20u64 {
            l.remove(0, &k);
        }
        assert_eq!(l.collector().stats().retired(), 20);
        assert_eq!(l.collector().stats().freed(), 0);
    }
}
