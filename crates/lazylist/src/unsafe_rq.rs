//! The *Unsafe* lazy list baseline (§8): linearizable primitive operations,
//! range queries that simply walk the current pointers with no consistency
//! guarantee. It is the performance reference line in Figures 2 and 3.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use parking_lot::Mutex;

use bundle::api::{ConcurrentSet, RangeQuerySet};
use ebr::{Collector, Guard, ReclaimMode};

struct Node<K, V> {
    key: K,
    val: Option<V>,
    lock: Mutex<()>,
    marked: AtomicBool,
    next: AtomicPtr<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn new(key: K, val: Option<V>) -> *mut Node<K, V> {
        Box::into_raw(Box::new(Node {
            key,
            val,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// The lazy sorted linked list exactly as published by Heller et al., with a
/// naive (non-linearizable) range query — the paper's `Unsafe` baseline.
pub struct UnsafeLazyList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    collector: Collector,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for UnsafeLazyList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for UnsafeLazyList<K, V> {}

impl<K, V> UnsafeLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Create a list supporting `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_mode(max_threads, ReclaimMode::Reclaim)
    }

    /// Create a list with an explicit reclamation mode.
    pub fn with_mode(max_threads: usize, mode: ReclaimMode) -> Self {
        let tail = Node::new(K::default(), None);
        let head = Node::new(K::default(), None);
        unsafe { (*head).next.store(tail, Ordering::Release) };
        UnsafeLazyList {
            head,
            tail,
            collector: Collector::new(max_threads, mode),
        }
    }

    /// The structure's epoch collector (diagnostics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    fn pin(&self, tid: usize) -> Guard<'_> {
        self.collector.pin(tid)
    }

    fn traverse(&self, target: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut pred = self.head;
        let mut curr = unsafe { &*pred }.next.load(Ordering::Acquire);
        while curr != self.tail && unsafe { &*curr }.key < *target {
            pred = curr;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }
        (pred, curr)
    }

    fn validate(&self, pred: *mut Node<K, V>, curr: *mut Node<K, V>) -> bool {
        let p = unsafe { &*pred };
        !p.marked.load(Ordering::Acquire) && p.next.load(Ordering::Acquire) == curr
    }
}

impl<K, V> ConcurrentSet<K, V> for UnsafeLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    fn insert(&self, tid: usize, key: K, value: V) -> bool {
        let _guard = self.pin(tid);
        loop {
            let (pred, curr) = self.traverse(&key);
            let pred_ref = unsafe { &*pred };
            let _lock = pred_ref.lock.lock();
            if !self.validate(pred, curr) {
                continue;
            }
            if curr != self.tail && unsafe { &*curr }.key == key {
                return false;
            }
            let node = Node::new(key, Some(value));
            unsafe { &*node }.next.store(curr, Ordering::Relaxed);
            pred_ref.next.store(node, Ordering::Release);
            return true;
        }
    }

    fn remove(&self, tid: usize, key: &K) -> bool {
        let guard = self.pin(tid);
        loop {
            let (pred, curr) = self.traverse(key);
            if curr == self.tail || unsafe { &*curr }.key != *key {
                return false;
            }
            let pred_ref = unsafe { &*pred };
            let curr_ref = unsafe { &*curr };
            let _pred_lock = pred_ref.lock.lock();
            let _curr_lock = curr_ref.lock.lock();
            if !self.validate(pred, curr) || curr_ref.marked.load(Ordering::Acquire) {
                continue;
            }
            let next = curr_ref.next.load(Ordering::Acquire);
            curr_ref.marked.store(true, Ordering::Release);
            pred_ref.next.store(next, Ordering::Release);
            unsafe { guard.retire(curr) };
            return true;
        }
    }

    fn contains(&self, tid: usize, key: &K) -> bool {
        let _guard = self.pin(tid);
        let (_, curr) = self.traverse(key);
        curr != self.tail
            && unsafe { &*curr }.key == *key
            && !unsafe { &*curr }.marked.load(Ordering::Acquire)
    }

    fn get(&self, tid: usize, key: &K) -> Option<V> {
        let _guard = self.pin(tid);
        let (_, curr) = self.traverse(key);
        if curr != self.tail
            && unsafe { &*curr }.key == *key
            && !unsafe { &*curr }.marked.load(Ordering::Acquire)
        {
            unsafe { &*curr }.val.clone()
        } else {
            None
        }
    }

    fn len(&self, tid: usize) -> usize {
        let _guard = self.pin(tid);
        let mut n = 0;
        let mut curr = unsafe { &*self.head }.next.load(Ordering::Acquire);
        while curr != self.tail {
            n += 1;
            curr = unsafe { &*curr }.next.load(Ordering::Acquire);
        }
        n
    }
}

impl<K, V> RangeQuerySet<K, V> for UnsafeLazyList<K, V>
where
    K: Copy + Ord + Default + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Non-linearizable scan over the current pointers: concurrent updates
    /// may be partially observed. This is exactly the paper's `Unsafe`
    /// reference implementation.
    fn range_query(&self, tid: usize, low: &K, high: &K, out: &mut Vec<(K, V)>) -> usize {
        let _guard = self.pin(tid);
        out.clear();
        let (_, mut curr) = self.traverse(low);
        while curr != self.tail && unsafe { &*curr }.key <= *high {
            let n = unsafe { &*curr };
            if !n.marked.load(Ordering::Acquire) {
                out.push((n.key, n.val.clone().expect("data node has a value")));
            }
            curr = n.next.load(Ordering::Acquire);
        }
        out.len()
    }
}

impl<K, V> Drop for UnsafeLazyList<K, V> {
    fn drop(&mut self) {
        let mut curr = self.head;
        while !curr.is_null() {
            let next = unsafe { &*curr }.next.load(Ordering::Relaxed);
            unsafe { drop(Box::from_raw(curr)) };
            if curr == self.tail {
                break;
            }
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    type List = UnsafeLazyList<u64, u64>;

    #[test]
    fn basic_set_semantics() {
        let l = List::new(1);
        assert!(l.insert(0, 3, 30));
        assert!(l.insert(0, 1, 10));
        assert!(l.insert(0, 2, 20));
        assert!(!l.insert(0, 2, 99));
        assert!(l.contains(0, &1));
        assert_eq!(l.get(0, &3), Some(30));
        assert!(l.remove(0, &1));
        assert!(!l.contains(0, &1));
        assert_eq!(l.len(0), 2);
        let mut out = Vec::new();
        l.range_query(0, &0, &10, &mut out);
        assert_eq!(out, vec![(2, 20), (3, 30)]);
    }

    #[test]
    fn matches_btreemap_model_sequentially() {
        let l = List::new(1);
        let mut model = BTreeMap::new();
        let mut seed = 42u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..2000 {
            let k = next() % 64;
            match next() % 3 {
                0 => assert_eq!(l.insert(0, k, k), model.insert(k, k).is_none()),
                1 => assert_eq!(l.remove(0, &k), model.remove(&k).is_some()),
                _ => assert_eq!(l.contains(0, &k), model.contains_key(&k)),
            }
        }
        assert_eq!(l.len(0), model.len());
    }

    #[test]
    fn concurrent_updates_preserve_structure() {
        const THREADS: usize = 4;
        let l = Arc::new(List::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut seed = (tid as u64 + 1) * 7919;
                    for _ in 0..2000 {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let k = seed % 128;
                        if seed.is_multiple_of(2) {
                            l.insert(tid, k, k);
                        } else {
                            l.remove(tid, &k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        l.range_query(0, &0, &(u64::MAX - 1), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), l.len(0));
    }
}
