//! Lazy sorted linked list implementations (§4 of the paper).
//!
//! The lazy list [Heller et al., OPODIS 2005] is the paper's illustrative
//! data structure: wait-free `contains`, fine-grained locking updates. This
//! crate provides:
//!
//! * [`BundledLazyList`] — the paper's contribution applied to the lazy
//!   list: every `next` link is backed by a [`bundle::Bundle`], updates run
//!   through `LinearizeUpdateOperation` (Algorithm 1/4), and range queries
//!   traverse the snapshot path defined by their starting timestamp
//!   (Algorithm 3).
//! * [`UnsafeLazyList`] — the paper's *Unsafe* reference point: identical
//!   primitive operations, but range queries traverse the current pointers
//!   with no consistency guarantee.
//!
//! All variants implement [`bundle::api::ConcurrentSet`] and
//! [`bundle::api::RangeQuerySet`] so the benchmark harness can drive them
//! interchangeably. The EBR-RQ and RLU competitor variants live in their
//! respective modules and are gated on those substrates.

mod bundled;
mod unsafe_rq;

pub use bundled::{BundledLazyList, ShardCursor, ShardTxn};
pub use unsafe_rq::UnsafeLazyList;
